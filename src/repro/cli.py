"""Command-line interface: ``python -m repro <command>``.

Commands:

``experiment <id> [--scale N]``
    Run one registered experiment (``fig07`` ... ``fig22``, ``table1``
    ... ``table3``, ``sorting``) and print its table.

``list``
    List available experiments, applications, datasets, schemes, codecs.

``schemes [--group G]``
    List registered schemes (base, overlay, default compression parts)
    for one registry group: ``paper``, ``cmh``, ``extensions``, ``all``.

``simulate --app A --scheme S --dataset D [--preprocessing P]``
    Simulate one configuration and print its metrics.

``compress --codec C [--data kind]``
    Demonstrate a codec on a chosen synthetic data distribution.

``traverse [--dataset D] [--rows N]``
    Run the functional fetcher over a compressed graph and report cycles
    and verification.

``report [--jobs N] [--cache-dir DIR] [--no-cache] [--telemetry F]``
    Run experiments through the job orchestrator (parallel workers,
    content-addressed result cache) and emit the markdown report.

``jobs [--telemetry F] [--cache-dir DIR]``
    Summarize the latest orchestrated run's JSONL telemetry (per-job
    timing, cache hits, retries) and the result cache's state.

``serve [--host H] [--port P] [--backend thread|process] [--workers N]``
    Run the simulation-as-a-service HTTP/JSON front end (price/
    simulate/sweep endpoints, request coalescing, cross-request
    batching, tiered result store) on the chosen compute backend
    until SIGINT/SIGTERM; shuts down gracefully, draining in-flight
    requests.  See docs/SERVING.md.

``perf diff <baseline> --against <current> [--threshold X]``
    Compare two timing files (bench JSON or trace JSONL) and exit
    nonzero when any shared metric regressed past the threshold.

``perf summary <trace.jsonl | bench.json>``
    Aggregate a span trace per name (calls, seconds, count), or list a
    benchmark JSON's flat timing metrics (including latency
    percentiles).

``experiment``/``simulate``/``report`` additionally accept
``--trace PATH`` to record a hierarchical span trace of the run as
JSONL (see docs/OBSERVABILITY.md), and ``--perf`` for the flat
per-stage profile on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.jobs.cache import DEFAULT_CACHE_DIR


def _cmd_list(_args) -> int:
    from repro.apps import ALL_APPS
    from repro.compression import available_codecs
    from repro.graph.datasets import DATASETS
    from repro.harness import EXPERIMENTS
    from repro.schemes import scheme_names
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("apps:       ", ", ".join(ALL_APPS))
    print("datasets:   ", ", ".join(sorted(DATASETS)))
    print("schemes:    ", ", ".join(scheme_names("all")))
    print("codecs:     ", ", ".join(available_codecs()))
    print("preprocess: ", "none, natural, degree, bfs, dfs, gorder")
    return 0


def _cmd_schemes(args) -> int:
    """List registered schemes (optionally one group) with details."""
    from repro.schemes import (
        REGISTRY,
        UnknownSchemeError,
        default_parts,
    )
    try:
        names = REGISTRY.names(args.group)
    except UnknownSchemeError as err:
        print(err, file=sys.stderr)
        return 2
    memberships = {name: [g for g in REGISTRY.groups() if g != "all"
                          and name in REGISTRY.names(g)]
                   for name in names}
    for name in names:
        spec = REGISTRY.parse(name)
        parts = "-" if not spec.spzip else \
            "+".join(sorted(default_parts(spec.base)))
        print(f"{name:12s} group={','.join(memberships[name]):10s} "
              f"base={spec.base:4s} overlay={spec.overlay or '-':5s} "
              f"default-parts={parts}")
    print(f"total: {len(names)} schemes; groups: "
          f"{', '.join(REGISTRY.groups())}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.harness import EXPERIMENTS, render_table
    from repro.sim import Runner
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; try `python -m repro "
              f"list`", file=sys.stderr)
        return 2
    runner = Runner(scale=args.scale)
    result = EXPERIMENTS[args.id](runner)
    print(render_table(result))
    return 0


def _cmd_simulate(args) -> int:
    from repro.schemes import (
        SchemeParseError,
        UnknownSchemeError,
        parse_scheme,
    )
    from repro.sim import Runner
    try:
        spec = parse_scheme(args.scheme)
    except (SchemeParseError, UnknownSchemeError) as err:
        print(err, file=sys.stderr)
        return 2
    runner = Runner(scale=args.scale)
    run = runner.run(args.app, spec, args.dataset,
                     args.preprocessing)
    base = runner.run(args.app, "push", args.dataset, args.preprocessing)
    print(f"app={run.app} scheme={run.scheme} dataset={run.dataset} "
          f"preprocessing={run.preprocessing}")
    print(f"cycles:         {run.cycles:.0f} "
          f"(compute {run.compute_cycles:.0f}, "
          f"memory {run.memory_cycles:.0f}; "
          f"{'memory' if run.bandwidth_bound else 'core'}-bound)")
    print(f"speedup vs push: {run.speedup_over(base):.2f}x")
    print(f"traffic vs push: {run.traffic_ratio_over(base):.2f}x")
    print("traffic by class (bytes):")
    for cls, nbytes in run.traffic.items():
        print(f"  {cls:20s} {nbytes:,.0f}")
    return 0


def _cmd_compress(args) -> int:
    from repro.compression import make_codec
    rng = np.random.default_rng(0)
    generators = {
        "sorted-ids": lambda: np.sort(rng.integers(0, 50_000, 1024)
                                      ).astype(np.uint32),
        "clustered": lambda: (10 ** 6 + np.cumsum(
            rng.integers(0, 8, 1024))).astype(np.uint32),
        "random": lambda: rng.integers(0, 2 ** 32, 1024,
                                       dtype=np.uint64
                                       ).astype(np.uint32),
        "runs": lambda: np.repeat(
            rng.integers(0, 100, 32).astype(np.uint32), 32),
        "floats": lambda: rng.standard_normal(1024
                                              ).astype(np.float32),
    }
    if args.data not in generators:
        print(f"unknown data kind {args.data!r}; have "
              f"{sorted(generators)}", file=sys.stderr)
        return 2
    data = generators[args.data]()
    codec = make_codec(args.codec)
    encoded = codec.encode(data)
    decoded = codec.decode(encoded, data.size, data.dtype)
    ok = np.array_equal(decoded, data)
    raw = data.size * data.dtype.itemsize
    print(f"codec={args.codec} data={args.data}: {raw} B -> "
          f"{len(encoded)} B ({raw / len(encoded):.2f}x), "
          f"roundtrip {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_report(args) -> int:
    from repro.harness import generate_report
    from repro.jobs import JobRunner
    runner = JobRunner(
        scale=args.scale, jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        telemetry_path=args.telemetry,
        timeout=args.timeout, retries=args.retries,
        progress=print if not args.out else None,
        partitions=args.partitions)
    ids = args.experiments or None
    report = generate_report(runner, experiment_ids=ids, progress=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    if runner.telemetry_path:
        print(f"telemetry: {runner.telemetry_path}", file=sys.stderr)
    return 0


def _cmd_jobs(args) -> int:
    """Inspect orchestration state: telemetry summaries, cache."""
    from repro.jobs import (
        ResultCache,
        latest_telemetry,
        render_summary,
        summarize,
    )
    status = 0
    path = args.telemetry or latest_telemetry(args.cache_dir)
    if path:
        print(render_summary(summarize(path)))
    else:
        print(f"no telemetry found under {args.cache_dir!r}; run "
              f"`python -m repro report --cache-dir {args.cache_dir}` "
              f"first", file=sys.stderr)
        status = 1
    cache = ResultCache(args.cache_dir)
    stats = cache.stats()
    dropped = "" if not stats["corrupt_dropped"] else \
        f", {stats['corrupt_dropped']} corrupt entr(ies) dropped"
    print(f"cache:     {stats['entries']} entries, "
          f"{stats['bytes'] / 1024:.1f} KiB under {cache.root}"
          f"{dropped}")
    return status


def _cmd_serve(args) -> int:
    """Run the asyncio serving front end until interrupted."""
    import asyncio
    import signal

    from repro.jobs.cache import StoreConfig
    from repro.serve import ServeApp, ServeServer

    store_config = StoreConfig(
        root=None if args.no_cache else args.cache_dir,
        stream_partitions=args.partitions,
        hot_capacity=args.hot_capacity)
    app = ServeApp(scale=args.scale, workers=args.workers,
                   admission_limit=args.max_concurrency,
                   backend=args.backend,
                   batch_window_s=args.batch_window,
                   batch_max=args.batch_max,
                   store_config=store_config)

    async def run() -> bool:
        server = await ServeServer(app, args.host, args.port).start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix event loop; Ctrl-C still raises
        print(f"serving on {server.url} (scale={app.scale}, "
              f"backend={app.backend.name}, workers={app.workers}, "
              f"cache={'off' if args.no_cache else args.cache_dir})",
              file=sys.stderr)
        try:
            drained = await server.serve_until(
                stop, drain_timeout=args.drain_timeout)
        except asyncio.CancelledError:
            drained = await server.shutdown(args.drain_timeout)
        print(f"shutdown: "
              f"{'drained' if drained else 'drain timed out'}; "
              f"{app.computes} computation(s), "
              f"{app.flight.followers} coalesced request(s)",
              file=sys.stderr)
        return drained

    try:
        drained = asyncio.run(run())
    except KeyboardInterrupt:
        return 0
    return 0 if drained else 1


def _cmd_perf(args) -> int:
    """Timing comparison and trace aggregation."""
    from repro.obs import (
        diff_timings,
        load_timings,
        render_diff,
        render_trace_summary,
    )
    if args.perf_command == "summary":
        try:
            if args.trace.endswith(".jsonl"):
                print(render_trace_summary(args.trace))
            else:
                # Bench JSON: the flat timing view perf diff compares,
                # including serve-style latency percentiles (p50/p99).
                timings = load_timings(args.trace)
                if not timings:
                    raise ValueError("no timing metrics found")
                width = max(len(name) for name in timings)
                print(f"timing metrics in {args.trace}:")
                for name in sorted(timings):
                    print(f"  {name:{width}s} {timings[name]:12.6f}s")
        except (OSError, ValueError) as err:
            print(f"cannot summarize {args.trace!r}: {err}",
                  file=sys.stderr)
            return 2
        return 0
    # diff
    try:
        baseline = load_timings(args.baseline)
        current = load_timings(args.against)
        regressions, compared = diff_timings(baseline, current,
                                             args.threshold)
    except (OSError, ValueError) as err:
        print(f"perf diff failed: {err}", file=sys.stderr)
        return 2
    print(render_diff(regressions, compared, args.threshold))
    return 1 if regressions else 0


def _cmd_traverse(args) -> int:
    from repro.config import SpZipConfig
    from repro.dcl import pack_range
    from repro.engine import (
        DriveRequest,
        INPUT_QUEUE,
        ROWS_QUEUE,
        Fetcher,
        compressed_csr_traversal,
        drive,
    )
    from repro.graph import CompressedCsr, load
    from repro.memory import AddressSpace
    graph = load(args.dataset, args.scale)
    rows = min(args.rows, graph.num_vertices)
    compressed = CompressedCsr(graph)
    space = AddressSpace()
    space.alloc_array("offsets", compressed.offsets, "adjacency")
    space.alloc_array("payload",
                      np.frombuffer(compressed.payload, dtype=np.uint8),
                      "adjacency")
    fetcher = Fetcher.from_program(compressed_csr_traversal(), space,
                                   SpZipConfig())
    result = drive(fetcher, DriveRequest(
        feeds={INPUT_QUEUE: [pack_range(0, rows + 1)]},
        consume=[ROWS_QUEUE], dequeues_per_cycle=4, max_cycles=10 ** 8))
    chunks = result.chunks(ROWS_QUEUE)
    edges = sum(len(c) for c in chunks)
    ok = all(chunks[v] == graph.row(v).tolist() for v in range(rows))
    print(f"{args.dataset}: traversed {rows} rows / {edges} edges in "
          f"{result.cycles} cycles "
          f"(adjacency ratio {compressed.compression_ratio():.2f}x); "
          f"verification {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpZip reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments/apps/datasets/codecs")

    schemes = sub.add_parser("schemes",
                             help="list registered schemes and groups")
    schemes.add_argument("--group", default="all",
                         help="registry group (paper, cmh, extensions, "
                              "all)")

    experiment = sub.add_parser("experiment",
                                help="run one table/figure experiment")
    experiment.add_argument("id")
    experiment.add_argument("--scale", type=int, default=4096)
    experiment.add_argument("--perf", action="store_true",
                            help="print per-stage profiling to stderr")
    experiment.add_argument("--trace", default=None, metavar="PATH",
                            help="write a span trace (JSONL) of the run")

    simulate = sub.add_parser("simulate",
                              help="simulate one app/scheme/input")
    simulate.add_argument("--app", default="bfs")
    simulate.add_argument("--scheme", default="phi+spzip")
    simulate.add_argument("--dataset", default="ukl")
    simulate.add_argument("--preprocessing", default="none")
    simulate.add_argument("--scale", type=int, default=4096)
    simulate.add_argument("--perf", action="store_true",
                          help="print per-stage profiling to stderr")
    simulate.add_argument("--trace", default=None, metavar="PATH",
                          help="write a span trace (JSONL) of the run")

    compress = sub.add_parser("compress", help="demo a codec")
    compress.add_argument("--codec", default="delta")
    compress.add_argument("--data", default="sorted-ids")

    report = sub.add_parser("report",
                            help="run all experiments, emit markdown")
    report.add_argument("--out", default=None)
    report.add_argument("--scale", type=int, default=4096)
    report.add_argument("--experiments", nargs="*", default=None)
    report.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes (1 = in-process)")
    report.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="content-addressed result cache root")
    report.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    report.add_argument("--telemetry", default=None,
                        help="JSONL telemetry path (default: under the "
                             "cache dir)")
    report.add_argument("--timeout", type=float, default=None,
                        help="per-job-group timeout in seconds")
    report.add_argument("--retries", type=int, default=1,
                        help="retries per failed/timed-out job group")
    report.add_argument("--partitions", type=_positive_int, default=1,
                        help="vertex-range partitions of the stream "
                             "stage (K>1 enables graph-delta partition "
                             "reuse)")
    report.add_argument("--perf", action="store_true",
                        help="print per-stage profiling to stderr")
    report.add_argument("--trace", default=None, metavar="PATH",
                        help="write a span trace (JSONL) covering the "
                             "whole report, including pool workers")

    jobs = sub.add_parser("jobs",
                          help="summarize orchestration telemetry and "
                               "cache state")
    jobs.add_argument("--telemetry", default=None,
                      help="telemetry JSONL to summarize (default: "
                           "latest under the cache dir)")
    jobs.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)

    serve = sub.add_parser("serve",
                           help="run the HTTP/JSON serving front end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377,
                       help="listen port (0 picks a free port)")
    serve.add_argument("--workers", type=_positive_int, default=4,
                       help="compute pool width (threads or worker "
                            "processes, per --backend)")
    serve.add_argument("--backend", choices=("thread", "process"),
                       default="thread",
                       help="compute backend: in-process threads, or "
                            "a sharded OS-process worker pool")
    serve.add_argument("--max-concurrency", type=_positive_int,
                       default=None,
                       help="admission limit on concurrent group "
                            "dispatches (default: --workers)")
    serve.add_argument("--batch-window", type=float, default=0.002,
                       metavar="SECONDS",
                       help="how long a batch waits for same-profile "
                            "company before dispatching")
    serve.add_argument("--batch-max", type=_positive_int, default=16,
                       help="cells per execute_group dispatch ceiling")
    serve.add_argument("--scale", type=int, default=4096)
    serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help="on-disk tier of the result store")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve from the in-process hot tier only")
    serve.add_argument("--hot-capacity", type=_positive_int,
                       default=1024,
                       help="hot-tier LRU entry bound")
    serve.add_argument("--partitions", type=_positive_int, default=1,
                       help="vertex-range partitions of the stream "
                            "stage (K>1 lets POST /graph/delta reuse "
                            "untouched partitions)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight requests "
                            "on shutdown")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a span trace (JSONL) of the "
                            "server's lifetime on shutdown")

    perf = sub.add_parser("perf",
                          help="timing diffs and trace summaries")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    diff = perf_sub.add_parser("diff",
                               help="compare two timing files, exit "
                                    "nonzero on regression")
    diff.add_argument("baseline",
                      help="baseline bench JSON or trace JSONL")
    diff.add_argument("--against", required=True,
                      help="current bench JSON or trace JSONL")
    diff.add_argument("--threshold", type=float, default=1.5,
                      help="regression ratio (must be > 1.0)")
    summary = perf_sub.add_parser("summary",
                                  help="aggregate a span trace by name")
    summary.add_argument("trace", help="trace JSONL path")

    traverse = sub.add_parser("traverse",
                              help="run the functional fetcher")
    traverse.add_argument("--dataset", default="ukl")
    traverse.add_argument("--rows", type=int, default=500)
    traverse.add_argument("--scale", type=int, default=4096)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "schemes": _cmd_schemes,
        "experiment": _cmd_experiment,
        "simulate": _cmd_simulate,
        "compress": _cmd_compress,
        "traverse": _cmd_traverse,
        "report": _cmd_report,
        "jobs": _cmd_jobs,
        "serve": _cmd_serve,
        "perf": _cmd_perf,
    }
    trace_path = getattr(args, "trace", None) \
        if args.command != "perf" else None
    if trace_path:
        from repro.obs import TRACER
        TRACER.start()
    try:
        status = handlers[args.command](args)
    finally:
        if trace_path:
            count = TRACER.save(trace_path)
            TRACER.stop()
            print(f"trace: {trace_path} ({count} spans)",
                  file=sys.stderr)
    if getattr(args, "perf", False):
        from repro.perf import PERF
        print(PERF.report(), file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
