"""Functional tests for the SpZip compressor pipelines."""

import numpy as np
import pytest

from repro.compression import DeltaCodec
from repro.config import SpZipConfig, SystemConfig
from repro.dcl import pack_tuple
from repro.engine import (
    DriveRequest,
    BIN_QUEUE,
    INPUT_QUEUE,
    Compressor,
    drive,
    single_stream_compress,
    ub_bins_compress,
)
from repro.memory import AddressSpace, MemoryHierarchy


def stream_space(capacity=1 << 16):
    space = AddressSpace()
    space.alloc("compressed_out", capacity, "updates")
    return space


def find_op(engine, name):
    return next(op for op in engine.operators if op.name == name)


class TestSingleStream:
    """Fig 13: compress one stream, write it sequentially."""

    def test_stream_compresses_and_roundtrips(self):
        space = stream_space()
        c = Compressor(SpZipConfig(), space)
        c.load_program(single_stream_compress(chunk_elems=64))
        values = list(range(1000, 1480, 4))  # one 120-element chunk budget
        feed = [(v, False) for v in values[:60]] + [(0, True)] + \
               [(v, False) for v in values[60:]] + [(0, True)]
        drive(c, DriveRequest(feeds={INPUT_QUEUE: feed}, consume=[]))
        writer = find_op(c, "writer")
        assert len(writer.chunk_lengths) == 2
        assert writer.total_written < len(values) * 4
        # Decode each chunk back from memory.
        base = space.region("compressed_out").base
        codec = DeltaCodec()
        offset = 0
        decoded = []
        for length in writer.chunk_lengths:
            payload = space.load(base + offset, length)
            decoded.extend(codec.decode_stream(payload,
                                               np.uint32).tolist())
            offset += length
        assert decoded == values

    def test_sorting_optimization_improves_ratio(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 10 ** 5, 512, dtype=np.uint64).tolist()

        def written(sort):
            c = Compressor(SpZipConfig(), stream_space())
            c.load_program(single_stream_compress(chunk_elems=32,
                                                  sort_chunks=sort))
            feed = [(v, False) for v in values] + [(0, True)]
            drive(c, DriveRequest(feeds={INPUT_QUEUE: feed}, consume=[]))
            return find_op(c, "writer").total_written

        assert written(sort=True) < written(sort=False)

    def test_overflow_guard(self):
        c = Compressor(SpZipConfig(), stream_space(capacity=64))
        c.load_program(single_stream_compress(capacity_bytes=64))
        rng = np.random.default_rng(8)
        feed = [(int(v), False)
                for v in rng.integers(0, 2 ** 32, 200, dtype=np.uint64)]
        feed.append((0, True))
        with pytest.raises(Exception):
            drive(c, DriveRequest(feeds={INPUT_QUEUE: feed}, consume=[]))


class TestUbBins:
    """Fig 14: two-MQU pipeline compressing update bins."""

    def make(self, nbins=4, chunk_elems=8, sort=True):
        space = AddressSpace()
        space.alloc("mqu_staging", nbins * 512, "updates")
        space.alloc("compressed_bins", nbins * (1 << 16), "updates")
        c = Compressor(SpZipConfig(), space)
        c.load_program(ub_bins_compress(nbins, chunk_elems=chunk_elems,
                                        sort_chunks=sort))
        return c, space

    def test_updates_land_in_right_bins(self):
        nbins = 4
        c, space = self.make(nbins)
        rng = np.random.default_rng(0)
        truth = {b: [] for b in range(nbins)}
        feed = []
        for _ in range(200):
            b = int(rng.integers(0, nbins))
            v = int(rng.integers(0, 1 << 32))
            truth[b].append(v)
            feed.append((pack_tuple(b, v), False))
        drive(c, DriveRequest(feeds={BIN_QUEUE: feed}, consume=[]))
        c.drain()
        append = find_op(c, "append")
        base = space.region("compressed_bins").base
        codec = DeltaCodec()
        for b in range(nbins):
            payload = space.load(base + b * (1 << 16), append.bin_bytes[b])
            # Chunks are independently delta-coded; decode chunk by chunk
            # is only possible with lengths, so check the cheap invariant:
            # decoded multiset of the whole bin under chunked decode.
            # The compressor sorted each chunk, so decode_stream on one
            # chunk is exact; with multiple chunks we verify sizes only.
            assert append.bin_bytes[b] > 0
            assert len(payload) == append.bin_bytes[b]
        # Total updates preserved: sum of chunk element counts.
        stage = find_op(c, "stage")
        assert stage.pending_elems() == 0

    def test_single_bin_roundtrip_exact(self):
        c, space = self.make(nbins=1, chunk_elems=64, sort=True)
        values = [int(v) for v in
                  np.random.default_rng(3).integers(0, 1 << 20, 40)]
        feed = [(pack_tuple(0, v), False) for v in values]
        drive(c, DriveRequest(feeds={BIN_QUEUE: feed}, consume=[]))
        c.drain()
        append = find_op(c, "append")
        payload = space.load(space.region("compressed_bins").base,
                             append.bin_bytes[0])
        decoded = DeltaCodec().decode_stream(payload, np.uint64).tolist()
        assert decoded == sorted(values)

    def test_drain_flushes_partial_bins(self):
        c, _space = self.make(nbins=2, chunk_elems=32)
        feed = [(pack_tuple(0, 5), False), (pack_tuple(1, 9), False)]
        drive(c, DriveRequest(feeds={BIN_QUEUE: feed}, consume=[]))
        stage = find_op(c, "stage")
        assert stage.pending_elems() == 2
        c.drain()
        assert stage.pending_elems() == 0
        append = find_op(c, "append")
        assert all(b > 0 for b in append.bin_bytes)

    def test_mqu_charges_pointer_and_value_traffic(self):
        c, _space = self.make(nbins=2)
        feed = [(pack_tuple(0, 1), False)]
        drive(c, DriveRequest(feeds={BIN_QUEUE: feed}, consume=[]))
        assert c.mem_reads >= 1   # tail pointer read
        assert c.mem_writes >= 1  # value write

    def test_compressor_issues_to_llc(self):
        hier = MemoryHierarchy(SystemConfig().scaled(4096), fast=True)
        hier.space.alloc("mqu_staging", 2 * 512, "updates")
        hier.space.alloc("compressed_bins", 2 * (1 << 16), "updates")
        c = Compressor.for_core(hier, core=0)
        c.load_program(ub_bins_compress(2, chunk_elems=4))
        feed = [(pack_tuple(0, v), False) for v in range(8)]
        drive(c, DriveRequest(feeds={BIN_QUEUE: feed}, consume=[]))
        c.drain()
        assert hier.l2[0].stats.accesses == 0
        assert hier.llc.stats.accesses > 0

    def test_bin_overflow_raises_without_handler(self):
        space = AddressSpace()
        space.alloc("mqu_staging", 512, "updates")
        space.alloc("compressed_bins", 16, "updates")
        c = Compressor(SpZipConfig(), space)
        c.load_program(ub_bins_compress(1, bin_bytes=16, chunk_elems=4))
        rng = np.random.default_rng(9)
        feed = [(pack_tuple(0, int(v)), False)
                for v in rng.integers(0, 1 << 60, 64, dtype=np.uint64)]
        with pytest.raises(Exception):
            drive(c, DriveRequest(feeds={BIN_QUEUE: feed}, consume=[]))
            c.drain()
