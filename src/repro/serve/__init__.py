"""Simulation-as-a-service: the asyncio HTTP/JSON serving front end.

The batch machinery (``repro.jobs``) answers "run this sweep"; this
package answers "keep answering pricing questions forever".  Layering
(each module only imports downward):

``http``       minimal HTTP/1.1 over asyncio streams (stdlib only)
``protocol``   JSON bodies <-> canonical ``RunRequest`` identities
``store``      tiered read-through result store (hot LRU -> disk CAS)
``admission``  bounded compute concurrency with wait telemetry
``batching``   single-flight coalescing of identical in-flight requests
``app``        endpoints, request spans, compute pool, graceful drain

Endpoints: ``POST /price``, ``POST /simulate``, ``POST /sweep``,
``GET /schemes``, ``GET /healthz``, ``GET /stats``.  See
docs/SERVING.md for schemas and semantics, ``python -m repro serve``
for the CLI entry point, and ``benchmarks/serve_load.py`` for the
load/latency harness.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import (
    ComputeError,
    DRAIN_TIMEOUT_S,
    MAX_SWEEP_CELLS,
    ServeApp,
    ServeServer,
)
from repro.serve.batching import SingleFlight
from repro.serve.http import (
    BadRequest,
    HttpRequest,
    MAX_BODY_BYTES,
    parse_response,
    read_request,
    render_response,
    write_json,
)
from repro.serve.protocol import (
    ProtocolError,
    metrics_to_json,
    parse_price,
    parse_sweep,
)
from repro.serve.store import DEFAULT_HOT_CAPACITY, TieredStore

__all__ = [
    "AdmissionController",
    "BadRequest",
    "ComputeError",
    "DEFAULT_HOT_CAPACITY",
    "DRAIN_TIMEOUT_S",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_SWEEP_CELLS",
    "ProtocolError",
    "ServeApp",
    "ServeServer",
    "SingleFlight",
    "TieredStore",
    "metrics_to_json",
    "parse_price",
    "parse_response",
    "parse_sweep",
    "read_request",
    "render_response",
    "write_json",
]
