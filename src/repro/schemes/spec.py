"""Declarative scheme identities.

A :class:`SchemeSpec` names one execution configuration the simulator
can price: a *base* strategy (Push, Pull, UB, PHI), an optional
memory-system *overlay* (``spzip`` — the paper's accelerator; ``cmh`` —
the Fig 22 compressed-memory-hierarchy baseline), plus the two ablation
axes of Figs 19/20: which structures SpZip compresses (``parts``) and
whether only decoupled fetching is kept (``decoupled``).

Specs are frozen and hashable, so they key cost tables and caches
directly.  Their :meth:`~SchemeSpec.canonical` string form round-trips
through the parse grammar in :mod:`repro.schemes.registry` and is what
the jobs layer fingerprints — ablation variants get distinct cache keys
because they are distinct scheme identities, not side-channel kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

#: Base execution strategies (Sec II-C; Pull is the Sec VI extension).
BASES = ("push", "pull", "ub", "phi")

#: Memory-system overlays: the SpZip engines, or the compressed
#: LLC+memory baseline of Fig 22.
OVERLAYS = ("spzip", "cmh")

#: SpZip compression parts for the Fig 19 ablation.
ALL_PARTS = frozenset({"adjacency", "updates", "vertex"})


class SchemeParseError(ValueError):
    """A scheme string does not follow the grammar."""


class UnknownSchemeError(KeyError):
    """A syntactically valid scheme is not in the registry."""

    def __str__(self) -> str:  # KeyError would requote the message
        return self.args[0] if self.args else ""


def default_parts(base: str) -> FrozenSet[str]:
    """Paper Sec IV defaults: Push/Pull compress the adjacency matrix
    only; UB/PHI compress adjacency, update bins, and vertex data."""
    return frozenset({"adjacency"}) if base in ("push", "pull") \
        else ALL_PARTS


@dataclass(frozen=True)
class SchemeSpec:
    """One scheme identity: base strategy + overlay + ablation options.

    ``parts`` is the *requested* compression-part override (``None``
    means the overlay's default); :attr:`effective_parts` resolves what
    actually gets compressed.  ``display`` is the human/metrics name
    (excluded from equality), matching the paper's figure labels.
    """

    base: str
    overlay: Optional[str] = None
    parts: Optional[FrozenSet[str]] = None
    decoupled: bool = False
    display: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.base not in BASES:
            raise SchemeParseError(
                f"unknown base strategy {self.base!r}; "
                f"expected one of {', '.join(BASES)}")
        if self.overlay not in (None, *OVERLAYS):
            raise SchemeParseError(
                f"unknown overlay {self.overlay!r}; "
                f"expected one of {', '.join(OVERLAYS)}")
        if self.parts is not None:
            parts = frozenset(self.parts)
            unknown = parts - ALL_PARTS
            if unknown:
                raise SchemeParseError(
                    f"unknown compression parts "
                    f"{sorted(unknown)}; expected a subset of "
                    f"{', '.join(sorted(ALL_PARTS))}")
            object.__setattr__(self, "parts", parts)
        if self.overlay == "cmh" and (self.parts is not None
                                      or self.decoupled):
            raise SchemeParseError(
                "the cmh baseline takes no ablation options "
                "(parts/decoupled model SpZip mechanisms)")
        if not self.display:
            name = self.family
            if self.decoupled:
                name += "+decoupled-only"
            object.__setattr__(self, "display", name)

    # -- identity ----------------------------------------------------------

    @property
    def family(self) -> str:
        """Registry identity: base plus overlay, without ablations."""
        return self.base if self.overlay is None \
            else f"{self.base}+{self.overlay}"

    @property
    def spzip(self) -> bool:
        return self.overlay == "spzip"

    @property
    def cmh(self) -> bool:
        return self.overlay == "cmh"

    @property
    def effective_parts(self) -> FrozenSet[str]:
        """What SpZip actually compresses under this spec.

        Non-SpZip schemes compress nothing; ``decoupled`` keeps the
        offload but disables compression (Fig 20); otherwise the
        requested parts, or the paper's per-base default.
        """
        if not self.spzip or self.decoupled:
            return frozenset()
        if self.parts is not None:
            return self.parts
        return default_parts(self.base)

    def canonical(self) -> str:
        """Round-trippable string form, stable across processes."""
        options = []
        if self.parts is not None:
            value = "+".join(sorted(self.parts)) or "none"
            options.append(f"parts={value}")
        if self.decoupled:
            options.append("decoupled")
        suffix = f"[{','.join(options)}]" if options else ""
        return self.family + suffix

    def with_options(self, parts: object = ...,
                     decoupled: object = ...) -> "SchemeSpec":
        """A copy with ablation options replaced (display recomputed)."""
        new_parts = self.parts if parts is ... else (
            None if parts is None else frozenset(parts))  # type: ignore
        new_decoupled = self.decoupled if decoupled is ... \
            else bool(decoupled)
        return SchemeSpec(base=self.base, overlay=self.overlay,
                          parts=new_parts, decoupled=new_decoupled)

    def __str__(self) -> str:
        return self.canonical()


def as_parts(values: Iterable[str]) -> FrozenSet[str]:
    """Validate and freeze a parts collection."""
    parts = frozenset(values)
    unknown = parts - ALL_PARTS
    if unknown:
        raise SchemeParseError(
            f"unknown compression parts {sorted(unknown)}; expected a "
            f"subset of {', '.join(sorted(ALL_PARTS))}")
    return parts
