"""Price one (spec, workload) combination into :class:`RunMetrics`.

:func:`simulate_spec` is the single pricing entry point: it looks up the
spec's cost model and constants, accumulates weighted per-iteration
traffic and work, and runs the bottleneck timing model.  The CMH overlay
takes a separate loop because it prices against measured BDI/LCP
compression ratios of the workload's actual arrays rather than SpZip's
profile-side compressed byte counts.

:func:`simulate_scheme` is the string-accepting wrapper (resolves
through the registry first), kept for callers that hold scheme names.

This module must not import :mod:`repro.runtime` at module scope:
``repro.runtime.strategies`` re-exports from here, so a top-level import
back into ``repro.runtime`` would cycle.  The two traffic helpers the
CMH replay needs are imported lazily inside the loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.compression import bdi_line_size, bdi_line_sizes
from repro.graph.idspace import expand_ids
from repro.memory.address import LINE_BYTES
from repro.memory.compressed import LCP_SLOT_SIZES, PAGE_BYTES
from repro.obs import TRACER
# Module-object reference, resolved at call time: on the
# ``import repro.schemes`` path this module is imported (via
# runtime.strategies) while schemes.costs is still mid-import.
import repro.schemes.costs as _costs
from repro.schemes.registry import resolve
from repro.schemes.spec import SchemeSpec
from repro.sim.metrics import RunMetrics, merge_traffic
from repro.sim.timing import PhaseWork, phase_cycles


def simulate_spec(workload, profiles, spec: SchemeSpec, cfg,
                  dataset: str = "?",
                  preprocessing: str = "?") -> RunMetrics:
    """Cost one (spec, workload) combination."""
    if spec.cmh:
        with TRACER.span("pricing.cmh", scheme=spec.canonical()):
            return _simulate_cmh(workload, profiles, spec, cfg, dataset,
                                 preprocessing)
    with TRACER.span("pricing.price", scheme=spec.canonical()):
        return _price_spec(workload, profiles, spec, cfg, dataset,
                           preprocessing)


def _price_spec(workload, profiles, spec: SchemeSpec, cfg,
                dataset: str, preprocessing: str) -> RunMetrics:
    model = _costs.cost_model_for(spec)
    costs = _costs.costs_for(spec)
    parts = spec.effective_parts

    traffic_parts: List[Dict[str, float]] = []
    work = PhaseWork()
    for p in profiles:
        t, w = model.iteration_cost(workload, p, parts)
        traffic_parts.append({cls: v * p.weight for cls, v in t.items()})
        # Instruction work stretches by the work-stealing imbalance of
        # this iteration's active set (Sec III-D).  Miss stalls do not:
        # while one core sits in a long-latency chunk, the others steal
        # around it, so stalls pipeline across the chunk population.
        # Traffic is unaffected by scheduling.
        stretch = p.weight * p.load_imbalance
        w_scaled = PhaseWork(
            edges=w.edges * stretch,
            vertices=w.vertices * stretch,
            updates=w.updates * stretch,
            dest_misses=w.dest_misses * p.weight,
            seq_bytes=w.seq_bytes * p.weight,
            rand_bytes=w.rand_bytes * p.weight,
        )
        work.add(w_scaled)

    traffic = merge_traffic(traffic_parts)
    cycles, compute, memory = phase_cycles(work, costs, cfg.system)
    return RunMetrics(app=workload.app, scheme=spec.display,
                      dataset=dataset, preprocessing=preprocessing,
                      cycles=cycles, compute_cycles=compute,
                      memory_cycles=memory, traffic=traffic)


def simulate_scheme(workload, profiles, scheme: Union[str, SchemeSpec],
                    cfg, parts: Optional[frozenset] = None,
                    decoupled_only: bool = False, dataset: str = "?",
                    preprocessing: str = "?") -> RunMetrics:
    """String/spec-accepting wrapper around :func:`simulate_spec`.

    ``parts`` restricts which structures SpZip compresses (Fig 19);
    ``decoupled_only`` keeps SpZip's offload but disables compression
    entirely (Fig 20).  Unknown schemes raise
    :class:`~repro.schemes.spec.UnknownSchemeError` naming every
    registered scheme.
    """
    spec = resolve(scheme, parts=parts, decoupled_only=decoupled_only)
    return simulate_spec(workload, profiles, spec, cfg, dataset=dataset,
                         preprocessing=preprocessing)


# --------------------------------------------------------------------------
# Compressed memory hierarchy baseline (Fig 22)
# --------------------------------------------------------------------------

def _pad_line(line: bytes) -> bytes:
    """Zero-pad a trailing partial line to the full 64 bytes."""
    return line if len(line) == LINE_BYTES \
        else line + bytes(LINE_BYTES - len(line))


def _bdi_ratio_scalar(data: bytes) -> float:
    """Per-line reference for :func:`_bdi_ratio` (equivalence-tested)."""
    if not data:
        return 1.0
    sizes = [bdi_line_size(_pad_line(data[start:start + LINE_BYTES]))
             for start in range(0, len(data), LINE_BYTES)]
    return (len(sizes) * LINE_BYTES) / sum(sizes)


def _bdi_ratio(data: bytes) -> float:
    """Average BDI compression ratio over 64-byte lines of ``data``.

    Every line counts, including a trailing partial line (zero-padded,
    like the line-granular memory that stores it) — previously the tail
    of a non-line-multiple buffer was silently dropped, and sub-line
    buffers degenerated to 1.0.
    """
    if not data:
        return 1.0
    sizes = bdi_line_sizes(data)
    return float(sizes.size * LINE_BYTES) / float(sizes.sum())


def _lcp_fetch_ratio_scalar(data: bytes) -> float:
    """Per-page reference for :func:`_lcp_fetch_ratio`."""
    if not data:
        return 1.0
    ratios = []
    for page_start in range(0, len(data), PAGE_BYTES):
        page = data[page_start:page_start + PAGE_BYTES]
        worst = max(
            bdi_line_size(_pad_line(page[start:start + LINE_BYTES]))
            for start in range(0, len(page), LINE_BYTES))
        slot = LINE_BYTES
        for candidate in LCP_SLOT_SIZES:
            if worst <= candidate:
                slot = candidate
                break
        ratios.append(LINE_BYTES / slot)
    return float(np.mean(ratios)) if ratios else 1.0


#: Lines per LCP page (4 KiB / 64 B).
_LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


def _lcp_fetch_ratio(data: bytes) -> float:
    """Mean LCP traffic reduction: per 4 KB page, every line is stored
    at the smallest uniform slot that fits the page's *worst* line.

    Vectorized over the whole buffer (one BDI sweep + per-page max);
    a trailing partial line is zero-padded, matching :func:`_bdi_ratio`.
    """
    if not data:
        return 1.0
    sizes = bdi_line_sizes(data)
    pad = (-sizes.size) % _LINES_PER_PAGE
    if pad:
        # Missing lines of a partial final page cannot raise its worst.
        sizes = np.concatenate([sizes, np.zeros(pad, dtype=sizes.dtype)])
    worst = sizes.reshape(-1, _LINES_PER_PAGE).max(axis=1)
    slots = np.full(worst.shape, LINE_BYTES, dtype=np.int64)
    for candidate in reversed(LCP_SLOT_SIZES):
        slots[worst <= candidate] = candidate
    return float(np.mean(LINE_BYTES / slots))


#: Per-(graph, scale) memo: one BDI/LCP sweep per workload's arrays.
_CMH_CACHE: Dict[tuple, Dict[str, float]] = {}


def cmh_ratios(workload, cfg) -> Dict[str, float]:
    """Measured BDI/LCP ratios of the workload's actual arrays."""
    graph = workload.graph
    key = (id(graph), workload.app, cfg.id_scale)
    if key in _CMH_CACHE:
        return _CMH_CACHE[key]
    adj_bytes = expand_ids(graph.neighbors, cfg.id_scale).astype(
        np.uint32).tobytes()
    if workload.dst_values is not None and workload.dst_values.size:
        dst_bytes = np.ascontiguousarray(workload.dst_values).tobytes()
    else:
        dst_bytes = b""
    with TRACER.span("pricing.cmh_ratios", app=workload.app,
                     count=(len(adj_bytes) + len(dst_bytes))
                     // LINE_BYTES):
        ratios = {
            "adj_lcp": _lcp_fetch_ratio(adj_bytes),
            "dst_lcp": _lcp_fetch_ratio(dst_bytes),
            "dst_bdi": _bdi_ratio(dst_bytes),
        }
    _CMH_CACHE[key] = ratios
    return ratios


def _simulate_cmh(workload, profiles, spec: SchemeSpec, cfg,
                  dataset: str, preprocessing: str,
                  ratios: Optional[Dict[str, float]] = None,
                  replays: Optional[list] = None) -> RunMetrics:
    """Push/UB on the VSC+BDI LLC + LCP memory system (Sec V-D).

    ``ratios`` and ``replays`` let the staged pipeline price against
    frozen compress/replay artifacts: ``ratios`` replaces the in-place
    BDI/LCP sweep and ``replays`` provides one ``(misses, writebacks)``
    per profile so no iteration stream needs re-replaying (``workload``
    may then be a lightweight view without real iterations).
    """
    if ratios is None:
        ratios = cmh_ratios(workload, cfg)
    model = _costs.cost_model_for(spec)
    costs = _costs.costs_for(spec)
    # VSC's extra residency for scattered read-modify-write data is
    # modelled as nil: every update changes the line's compressed size,
    # forcing repacks that erode the capacity win, and at model scale the
    # per-input LLC sizing sits at the residency knee where any capacity
    # delta would be wildly amplified (a scale artifact, not a mechanism
    # — see DESIGN.md).  CMH's modelled benefits are LCP's read-traffic
    # reduction, at the price of critical-path decompression.
    capacity = cfg.llc_lines

    traffic_parts: List[Dict[str, float]] = []
    work = PhaseWork()
    iterations = workload.iterations if replays is None \
        else [None] * len(profiles)
    for index, (p, it) in enumerate(zip(profiles, iterations)):
        t, w = model.cmh_iteration_cost(
            workload, p, it, ratios, capacity,
            replay=None if replays is None else replays[index])
        traffic_parts.append({cls: v * p.weight for cls, v in t.items()})
        scaled = PhaseWork(**{f: getattr(w, f) * p.weight
                              for f in ("edges", "vertices", "updates",
                                        "dest_misses", "seq_bytes",
                                        "rand_bytes")})
        work.add(scaled)

    traffic = merge_traffic(traffic_parts)
    cycles, compute, memory = phase_cycles(work, costs, cfg.system)
    return RunMetrics(app=workload.app, scheme=spec.display,
                      dataset=dataset, preprocessing=preprocessing,
                      cycles=cycles, compute_cycles=compute,
                      memory_cycles=memory, traffic=traffic,
                      extras=ratios)
