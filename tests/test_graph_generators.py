"""Tests for the synthetic graph generators and the dataset registry."""

import numpy as np
import pytest

from repro.graph import (
    DATASETS,
    GRAPH_INPUTS,
    banded_matrix,
    community_graph,
    load,
    load_preprocessed,
    rmat,
    uniform_graph,
)


class TestRmat:
    def test_shape_close_to_request(self):
        g = rmat(1000, 8000)
        assert g.num_vertices == 1000
        assert abs(g.num_edges - 8000) <= 8000 * 0.02

    def test_deterministic(self):
        a = rmat(500, 2000)
        b = rmat(500, 2000)
        assert np.array_equal(a.neighbors, b.neighbors)

    def test_degree_skew(self):
        g = rmat(2000, 20000)
        degrees = np.sort(g.out_degrees())[::-1]
        # Heavy tail: the top 1% of vertices own far more than 1% of edges.
        top = degrees[:20].sum()
        assert top > 0.05 * g.num_edges

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            rmat(100, 500, a=0.5, b=0.3, c=0.3)

    def test_no_self_loops(self):
        g = rmat(300, 1500)
        for v, row in g.iter_rows():
            assert v not in row


class TestCommunityGraph:
    def test_shape(self):
        g = community_graph(2000, 20000)
        assert g.num_vertices == 2000
        assert abs(g.num_edges - 20000) <= 20000 * 0.02

    def test_locality_of_natural_order(self):
        """Most edges land near the source (crawl-order locality)."""
        g = community_graph(2000, 20000)
        src = np.repeat(np.arange(2000), g.out_degrees())
        distance = np.abs(src - g.neighbors.astype(np.int64))
        assert np.median(distance) < 64

    def test_deterministic(self):
        a = community_graph(800, 4000)
        b = community_graph(800, 4000)
        assert np.array_equal(a.neighbors, b.neighbors)


class TestUniformGraph:
    def test_no_locality(self):
        g = uniform_graph(2000, 20000)
        src = np.repeat(np.arange(2000), g.out_degrees())
        distance = np.abs(src - g.neighbors.astype(np.int64))
        assert np.median(distance) > 200


class TestBandedMatrix:
    def test_nonzeros_near_diagonal(self):
        m = banded_matrix(1000, 10000, bandwidth_fraction=0.02)
        rows = np.repeat(np.arange(1000), m.out_degrees())
        distance = np.abs(rows - m.neighbors.astype(np.int64))
        assert distance.max() <= 2 * max(2, int(1000 * 0.02)) + 20

    def test_rows_reasonably_balanced(self):
        m = banded_matrix(500, 5000)
        degrees = m.out_degrees()
        assert degrees.max() <= 40


class TestDatasets:
    def test_table3_entries(self):
        assert set(DATASETS) == {"arb", "ukl", "twi", "it", "web", "nlp"}
        assert DATASETS["ukl"].source == "uk-2005"
        assert DATASETS["twi"].kind == "social"
        assert DATASETS["nlp"].kind == "matrix"

    def test_graph_inputs_subset(self):
        assert set(GRAPH_INPUTS) < set(DATASETS)

    def test_scaled_shapes_preserve_avg_degree(self):
        for spec in DATASETS.values():
            vertices, edges = spec.scaled_shape(4096)
            paper_degree = spec.edges_m / spec.vertices_m
            assert edges / vertices == pytest.approx(paper_degree,
                                                     rel=0.15)

    def test_load_memoizes(self):
        assert load("arb", 65536) is load("arb", 65536)

    def test_load_unknown_rejected(self):
        with pytest.raises(KeyError):
            load("facebook")

    def test_load_preprocessed_none_randomizes(self):
        natural = load_preprocessed("arb", "natural", 65536)
        randomized = load_preprocessed("arb", "none", 65536)
        assert randomized.num_edges == natural.num_edges
        assert not np.array_equal(randomized.neighbors,
                                  natural.neighbors)
