"""Virtual id expansion: paper-scale id entropy for scaled-down graphs.

Our datasets shrink the paper's graphs ~4096x (see
:mod:`repro.graph.datasets`), which shrinks the vertex-id space by the
same factor.  That distorts exactly one thing: the *compressibility of
vertex-id streams*.  In a randomized 39M-vertex graph the gap between
consecutive sorted neighbour ids is ~2^21, needing a 4-byte code (no
compression); in a 9.5k-vertex model it is ~2^9, needing 2 bytes
(spurious 2x compression).

``expand_ids`` maps each model id into a virtual paper-scale id space
with a *two-level* stretch:

* **across blocks** (communities) the space is stretched by the full
  ``scale`` — long-range gaps regain paper-scale entropy, so randomized
  graphs stop compressing, as in the paper;
* **within a block** of ``block`` consecutive ids, the stretch is only
  ``local_stride`` — communities keep their absolute density, because
  real communities (web hosts) do not grow when the graph is sampled
  down, and intra-community gaps are what DFS/BFS/GOrder preprocessing
  turns into 1-2-byte delta codes.

The map is strictly monotonic, so sortedness and relative structure are
preserved.  The *functional* paths (engines, algorithm correctness) never
expand ids; expansion exists purely so the traffic model measures honest
compression ratios.  Tests pin monotonicity and the randomized /
preprocessed ratio split.
"""

from __future__ import annotations

import numpy as np

_HASH_MULT = np.uint64(2654435761)

#: Ids within one block keep their local density (community granularity).
DEFAULT_BLOCK = 256
#: Within-block stretch; must stay <= scale for monotonicity.
DEFAULT_LOCAL_STRIDE = 4


def expand_ids(ids: np.ndarray, scale: int, block: int = DEFAULT_BLOCK,
               local_stride: int = DEFAULT_LOCAL_STRIDE) -> np.ndarray:
    """Map model vertex ids onto a paper-scale virtual id space.

    Returns ``uint64`` virtual ids.  ``scale <= 1`` is the identity.
    """
    ids64 = np.asarray(ids).astype(np.uint64)
    if scale <= 1:
        return ids64
    if block & (block - 1):
        raise ValueError("block must be a power of two")
    stride = np.uint64(min(local_stride, scale))
    blk = ids64 // np.uint64(block)
    off = ids64 % np.uint64(block)
    noise = (ids64 * _HASH_MULT) % stride
    return (blk * np.uint64(block * scale)) + off * stride + noise


def expanded_id_bytes(scale: int, num_vertices: int) -> int:
    """Element width (4 or 8 bytes) needed for virtual ids.

    The paper stores neighbour ids in 32 bits; all Table III graphs fit.
    Our virtual space (num_vertices * scale) also fits 32 bits for every
    Table III input, but the helper keeps the general rule explicit.
    """
    top = num_vertices * max(1, scale)
    return 4 if top <= (1 << 32) else 8
