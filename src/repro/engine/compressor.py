"""The SpZip compressor (paper Sec III-C, Fig 12).

The dual of the fetcher: compresses newly generated data before it is
written back to main memory.  It issues **LLC** accesses rather than L2
accesses — avoiding private-cache pollution and letting the large LLC
buffer yet-to-be-compressed data (the MQU's in-memory queues).

Hosts the compression unit (CU), stream writer (SWU), and memory-backed
queue unit (MQU) operators.  ``drain()`` implements the
``spzip_comp_drain()`` runtime call of Listing 5: close every MQU queue
and run until all buffered data is compressed and written.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SpZipConfig
from repro.dcl.operators import MemQueueOp
from repro.dcl.program import COMPRESSOR_KINDS
from repro.engine.base import MODE_EVENT, MemPort, SpZipEngine
from repro.memory.address import AddressSpace
from repro.memory.hierarchy import MemoryHierarchy


class Compressor(SpZipEngine):
    """Per-core compression engine (LLC-side)."""

    allowed_kinds = COMPRESSOR_KINDS

    def __init__(self, config: SpZipConfig, space: AddressSpace,
                 mem_port: Optional[MemPort] = None,
                 mem_latency: int = 30,
                 mode: str = MODE_EVENT) -> None:
        super().__init__(config, space, mem_port, mem_latency, mode)

    @classmethod
    def for_core(cls, hierarchy: MemoryHierarchy, core: int = 0,
                 config: Optional[SpZipConfig] = None,
                 mode: str = MODE_EVENT,
                 program=None) -> "Compressor":
        """Build a compressor issuing to the shared LLC.

        With ``program`` the compressor comes back fully wired
        (:meth:`SpZipEngine.from_program` against the hierarchy's space).
        """
        config = config or hierarchy.config.spzip

        def port(addr: int, nbytes: int, write: bool) -> int:
            return hierarchy.access(addr, nbytes, core=core, write=write,
                                    start_level="llc")

        if program is not None:
            return cls.from_program(program, hierarchy.space, config,
                                    mem_port=port, mode=mode)
        return cls(config, hierarchy.space, mem_port=port, mode=mode)

    def drain(self, max_cycles: int = 10_000_000) -> int:
        """Close every MQU and run until all buffered data is flushed.

        MQUs are closed in declaration (topological) order with a full
        engine drain between closes, so data released by an upstream MQU
        reaches downstream MQUs before *they* are closed (the Fig 14
        two-MQU pipeline needs this).
        """
        start = self.cycle
        mqus = [op for op in self.operators if isinstance(op, MemQueueOp)]
        for _ in range(len(mqus) + 1):
            self.run(max_cycles)
            if not any(op.pending_elems() for op in mqus):
                break
            for op in mqus:
                # A marker with an out-of-range id closes every queue.
                self._push_blocking(op.in_queue, op.num_queues, marker=True)
                self.run(max_cycles)
        else:
            raise RuntimeError("MQU drain did not converge")
        return self.cycle - start

    def _push_blocking(self, queue, value: int, marker: bool) -> None:
        while not queue.try_push(value, marker):
            self.tick()
