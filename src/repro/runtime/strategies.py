"""Execution strategies: Push, Update Batching, PHI — each +- SpZip.

Every strategy converts the shared iteration profiles
(:mod:`repro.runtime.traffic`) into per-class off-chip traffic and core
work, then the bottleneck timing model prices the result.  SpZip variants
follow the paper's Sec IV configuration:

* **Push+SpZip** compresses the adjacency matrix only ("for Push, we
  compress the adjacency matrix, but not vertex data");
* **UB+SpZip / PHI+SpZip** compress adjacency, update bins, and vertex
  data (destination data compressed after each bin's accumulation);
* compression ablations (Fig 19) enable those parts one at a time, and
  the decoupled-fetching-only variant (Fig 20) takes SpZip's offload
  without any compression.

The CMH schemes (Fig 22) model the VSC+BDI compressed LLC and LCP
compressed memory instead of SpZip.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.compression import bdi_line_size
from repro.graph.idspace import expand_ids
from repro.memory.address import LINE_BYTES
from repro.memory.compressed import LCP_SLOT_SIZES, PAGE_BYTES
from repro.runtime.traffic import (
    IterationProfile,
    ModelConfig,
    lru_scatter_replay,
    gather_rows,
)
from repro.runtime.workload import Workload
from repro.sim.metrics import RunMetrics, merge_traffic
from repro.sim.timing import SCHEME_COSTS, PhaseWork, phase_cycles

#: All scheme names, in the paper's Fig 15 bar order.
SCHEMES = ("push", "push+spzip", "ub", "ub+spzip", "phi", "phi+spzip")
CMH_SCHEMES = ("push+cmh", "ub+cmh")
#: Extension beyond the paper's evaluation: the Pull (destination-
#: stationary) style of Sec II-C, with direction-optimized fallback to
#: Push on sparse frontiers.
EXTRA_SCHEMES = ("pull", "pull+spzip")

#: SpZip compression parts for the Fig 19 ablation.
ALL_PARTS = frozenset({"adjacency", "updates", "vertex"})


def simulate_scheme(workload: Workload, profiles: List[IterationProfile],
                    scheme: str, cfg: ModelConfig,
                    parts: Optional[frozenset] = None,
                    decoupled_only: bool = False,
                    dataset: str = "?",
                    preprocessing: str = "?") -> RunMetrics:
    """Cost one (scheme, workload) combination.

    ``parts`` restricts which structures SpZip compresses (Fig 19);
    ``decoupled_only`` keeps SpZip's offload but disables compression
    entirely (Fig 20).
    """
    base = scheme.split("+")[0]
    spzip = scheme.endswith("+spzip")
    if base not in ("push", "ub", "phi", "pull"):
        raise KeyError(f"unknown scheme {scheme!r}")
    if scheme.endswith("+cmh"):
        return _simulate_cmh(workload, profiles, base, cfg, dataset,
                             preprocessing)
    if parts is None:
        parts = frozenset({"adjacency"}) if base in ("push", "pull") \
            else ALL_PARTS
    if not spzip:
        parts = frozenset()
    if decoupled_only:
        parts = frozenset()
    costs = SCHEME_COSTS[f"{base}-spzip" if spzip else base]

    traffic_parts: List[Dict[str, float]] = []
    work = PhaseWork()
    for p in profiles:
        t, w = _iteration_cost(workload, p, base, spzip, parts, cfg)
        traffic_parts.append({cls: v * p.weight for cls, v in t.items()})
        # Instruction work stretches by the work-stealing imbalance of
        # this iteration's active set (Sec III-D).  Miss stalls do not:
        # while one core sits in a long-latency chunk, the others steal
        # around it, so stalls pipeline across the chunk population.
        # Traffic is unaffected by scheduling.
        stretch = p.weight * p.load_imbalance
        w_scaled = PhaseWork(
            edges=w.edges * stretch,
            vertices=w.vertices * stretch,
            updates=w.updates * stretch,
            dest_misses=w.dest_misses * p.weight,
            seq_bytes=w.seq_bytes * p.weight,
            rand_bytes=w.rand_bytes * p.weight,
        )
        work.add(w_scaled)

    traffic = merge_traffic(traffic_parts)
    cycles, compute, memory = phase_cycles(work, costs, cfg.system)
    name = scheme if not decoupled_only else f"{scheme}+decoupled-only"
    return RunMetrics(app=workload.app, scheme=name, dataset=dataset,
                      preprocessing=preprocessing, cycles=cycles,
                      compute_cycles=compute, memory_cycles=memory,
                      traffic=traffic)


def graph_dst_bytes(p: IterationProfile, workload: Workload) -> int:
    """Line-granular bytes of one sequential destination-array write."""
    nbytes = workload.graph.num_vertices * workload.dst_value_bytes
    return -(-nbytes // LINE_BYTES) * LINE_BYTES


def _iteration_cost(workload: Workload, p: IterationProfile, base: str,
                    spzip: bool, parts: frozenset, cfg: ModelConfig):
    """(traffic by class, PhaseWork) for one iteration, unweighted."""
    compress_adj = "adjacency" in parts
    compress_upd = "updates" in parts
    compress_vtx = "vertex" in parts
    all_active = not workload.frontier_based

    adjacency = float(p.offsets_bytes)
    adjacency += p.neigh_bytes_compressed if compress_adj else p.neigh_bytes
    adjacency += (p.edge_value_bytes_compressed if compress_adj
                  else p.edge_value_bytes)

    source = float(p.src_bytes_compressed if compress_vtx else p.src_bytes)

    updates = float(p.frontier_bytes_compressed if compress_upd
                    else p.frontier_bytes)

    work = PhaseWork(edges=p.num_edges, vertices=p.num_sources)

    if base == "push":
        dest = float(p.push_dest_read_bytes + p.push_dest_write_bytes)
        work.dest_misses = p.push_dest_misses
        work.rand_bytes += dest + p.offsets_bytes * (0 if all_active else 1)
        work.seq_bytes += (adjacency + source + updates
                           - (0 if all_active else p.offsets_bytes))
    elif base == "pull":
        if all_active and p.pull_adj_bytes:
            # Destination-stationary: walk incoming edges, gather source
            # values (scattered reads, no atomics), write destinations
            # sequentially once.
            adjacency = float(p.offsets_bytes)
            adjacency += (p.pull_adj_bytes_compressed if compress_adj
                          else p.pull_adj_bytes)
            adjacency += (p.edge_value_bytes_compressed if compress_adj
                          else p.edge_value_bytes)
            source = float(p.pull_gather_read_bytes)
            vertex_out = graph_dst_bytes(p, workload)
            dest = float(vertex_out)
            work.dest_misses = p.pull_gather_misses
            work.rand_bytes += source
            work.seq_bytes += adjacency + dest + updates
        else:
            # Direction-optimized runtimes fall back to Push on sparse
            # frontiers (pulling would scan every vertex's in-edges).
            dest = float(p.push_dest_read_bytes + p.push_dest_write_bytes)
            work.dest_misses = p.push_dest_misses
            work.rand_bytes += dest + p.offsets_bytes
            work.seq_bytes += (adjacency + source + updates
                               - p.offsets_bytes)
    elif base == "ub":
        if compress_upd:
            # The SpZip compressor's bin-append writes whole compressed
            # chunks (no read-for-ownership): one write + one read back.
            updates += 2.0 * p.update_bytes_compressed
        else:
            # Software binning uses ordinary stores, which RFO the bin
            # line before writing: write costs 2x, plus the read back.
            updates += 3.0 * p.update_bytes
        dest = float(p.ub_dest_bytes_compressed if compress_vtx
                     else p.ub_dest_bytes)
        work.updates = p.num_edges  # accumulation applies every update
        work.seq_bytes += adjacency + source + updates + dest
    else:  # phi
        upd_bytes = (p.phi_update_bytes_compressed if compress_upd
                     else p.phi_update_bytes)
        updates += float(upd_bytes)
        dest = float(p.ub_dest_bytes_compressed if compress_vtx
                     else p.ub_dest_bytes)
        work.updates = p.phi_spilled_updates
        work.seq_bytes += adjacency + source + updates + dest

    return ({"adjacency": adjacency, "source_vertex": source,
             "destination_vertex": float(dest), "updates": updates},
            work)


# --------------------------------------------------------------------------
# Compressed memory hierarchy baseline (Fig 22)
# --------------------------------------------------------------------------

def _bdi_ratio(data: bytes) -> float:
    """Average BDI compression ratio over 64-byte lines of ``data``."""
    if not data:
        return 1.0
    total = 0
    lines = 0
    for start in range(0, len(data) - LINE_BYTES + 1, LINE_BYTES):
        total += bdi_line_size(data[start:start + LINE_BYTES])
        lines += 1
    if lines == 0:
        return 1.0
    return (lines * LINE_BYTES) / total


def _lcp_fetch_ratio(data: bytes) -> float:
    """Mean LCP traffic reduction: per 4 KB page, every line is stored at
    the smallest uniform slot that fits the page's *worst* line."""
    if not data:
        return 1.0
    ratios = []
    for page_start in range(0, len(data), PAGE_BYTES):
        page = data[page_start:page_start + PAGE_BYTES]
        worst = 0
        for start in range(0, len(page) - LINE_BYTES + 1, LINE_BYTES):
            worst = max(worst, bdi_line_size(page[start:start
                                                  + LINE_BYTES]))
        slot = LINE_BYTES
        for candidate in LCP_SLOT_SIZES:
            if worst <= candidate:
                slot = candidate
                break
        ratios.append(LINE_BYTES / slot)
    return float(np.mean(ratios)) if ratios else 1.0


#: Per-(graph, scale) memo: the BDI/LCP sweeps walk every line in Python.
_CMH_CACHE: Dict[tuple, Dict[str, float]] = {}


def cmh_ratios(workload: Workload, cfg: ModelConfig) -> Dict[str, float]:
    """Measured BDI/LCP ratios of the workload's actual arrays."""
    graph = workload.graph
    key = (id(graph), workload.app, cfg.id_scale)
    if key in _CMH_CACHE:
        return _CMH_CACHE[key]
    adj_bytes = expand_ids(graph.neighbors, cfg.id_scale).astype(
        np.uint32).tobytes()
    if workload.dst_values is not None and workload.dst_values.size:
        dst_bytes = np.ascontiguousarray(workload.dst_values).tobytes()
    else:
        dst_bytes = b""
    ratios = {
        "adj_lcp": _lcp_fetch_ratio(adj_bytes),
        "dst_lcp": _lcp_fetch_ratio(dst_bytes),
        "dst_bdi": _bdi_ratio(dst_bytes),
    }
    _CMH_CACHE[key] = ratios
    return ratios


def _simulate_cmh(workload: Workload, profiles: List[IterationProfile],
                  base: str, cfg: ModelConfig, dataset: str,
                  preprocessing: str) -> RunMetrics:
    """Push/UB on the VSC+BDI LLC + LCP memory system (Sec V-D)."""
    ratios = cmh_ratios(workload, cfg)
    costs = SCHEME_COSTS[base]
    # Decompression and LCP metadata lookups sit on the critical path of
    # every miss (Sec V-D: "these systems are not decoupled ...
    # compression hurts access latency").
    from dataclasses import replace
    costs = replace(costs, stall_per_miss=costs.stall_per_miss + 40.0)
    # VSC's extra residency for scattered read-modify-write data is
    # modelled as nil: every update changes the line's compressed size,
    # forcing repacks that erode the capacity win, and at model scale the
    # per-input LLC sizing sits at the residency knee where any capacity
    # delta would be wildly amplified (a scale artifact, not a mechanism
    # — see DESIGN.md).  CMH's modelled benefits are LCP's read-traffic
    # reduction, at the price of critical-path decompression.
    capacity = cfg.llc_lines

    traffic_parts: List[Dict[str, float]] = []
    work = PhaseWork()
    for p, it in zip(profiles, workload.iterations):
        adjacency = (p.offsets_bytes
                     + p.neigh_bytes / ratios["adj_lcp"]
                     + p.edge_value_bytes)
        source = float(p.src_bytes)
        updates = float(p.frontier_bytes)
        w = PhaseWork(edges=p.num_edges, vertices=p.num_sources)
        if base == "push":
            dsts = gather_rows(workload.graph, it.sources)
            per_line = max(1, LINE_BYTES // workload.dst_value_bytes)
            misses, writebacks = lru_scatter_replay(
                dsts.astype(np.int64) // per_line, capacity)
            # LCP shrinks fetches, but RMW writebacks change line sizes
            # and overflow the page's uniform slots, so writes go out at
            # full size.
            dest = (misses * LINE_BYTES / ratios["dst_lcp"]
                    + writebacks * LINE_BYTES)
            w.dest_misses = misses
            w.rand_bytes += dest
            w.seq_bytes += adjacency + source + updates
        else:
            # UB under CMH: binning still RFOs its buffered stores (2x
            # write), and only the accumulation *read* of the bins gets
            # LCP's per-line reduction — which is small, because 8-byte
            # {dst, value} tuples rarely compress at line granularity.
            updates += 2.0 * p.update_bytes + p.update_bytes / 1.1
            dest = (p.ub_dest_bytes / 2) / ratios["dst_lcp"] \
                + (p.ub_dest_bytes / 2)
            w.updates = p.num_edges
            w.seq_bytes += adjacency + source + updates + dest
        traffic_parts.append({
            "adjacency": adjacency * p.weight,
            "source_vertex": source * p.weight,
            "destination_vertex": float(dest) * p.weight,
            "updates": updates * p.weight,
        })
        scaled = PhaseWork(**{f: getattr(w, f) * p.weight
                              for f in ("edges", "vertices", "updates",
                                        "dest_misses", "seq_bytes",
                                        "rand_bytes")})
        work.add(scaled)

    traffic = merge_traffic(traffic_parts)
    cycles, compute, memory = phase_cycles(work, costs, cfg.system)
    return RunMetrics(app=workload.app, scheme=f"{base}+cmh",
                      dataset=dataset, preprocessing=preprocessing,
                      cycles=cycles, compute_cycles=compute,
                      memory_cycles=memory, traffic=traffic,
                      extras=ratios)


def available_schemes() -> Iterable[str]:
    return SCHEMES + CMH_SCHEMES
