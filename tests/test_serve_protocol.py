"""Request normalization and validation (repro.serve.protocol)."""

import pytest

from repro.jobs import RunRequest, canonical_request
from repro.serve.protocol import (
    ProtocolError,
    metrics_to_json,
    parse_price,
    parse_sweep,
    request_to_json,
)


class TestParsePrice:
    def test_minimal_body_normalizes(self):
        request = parse_price({"app": "dc", "scheme": "phi+spzip",
                               "dataset": "arb"})
        assert request == canonical_request("dc", "phi+spzip", "arb")
        assert request.preprocessing == "none"

    def test_bracket_and_kwarg_spellings_share_identity(self):
        """The coalescing invariant: one cell, one canonical key."""
        bracket = parse_price({"app": "dc",
                               "scheme": "phi+spzip[parts=adjacency]",
                               "dataset": "arb"})
        kwarg = parse_price({"app": "dc", "scheme": "phi+spzip",
                             "dataset": "arb",
                             "parts": ["adjacency"]})
        assert bracket == kwarg

    def test_parts_accepts_single_string(self):
        one = parse_price({"app": "dc", "scheme": "phi+spzip",
                           "dataset": "arb", "parts": "adjacency"})
        many = parse_price({"app": "dc", "scheme": "phi+spzip",
                            "dataset": "arb", "parts": ["adjacency"]})
        assert one == many

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError) as info:
            parse_price([1, 2, 3])
        assert "JSON object" in str(info.value)

    @pytest.mark.parametrize("missing", ["app", "scheme", "dataset"])
    def test_missing_required_field(self, missing):
        body = {"app": "dc", "scheme": "phi", "dataset": "arb"}
        del body[missing]
        with pytest.raises(ProtocolError) as info:
            parse_price(body)
        assert missing in str(info.value)

    def test_unknown_field_rejected_with_menu(self):
        with pytest.raises(ProtocolError) as info:
            parse_price({"app": "dc", "scheme": "phi",
                         "dataset": "arb", "turbo": True})
        assert "turbo" in str(info.value)
        assert "preprocessing" in str(info.value)  # the valid menu

    def test_unknown_app_lists_valid_apps(self):
        with pytest.raises(ProtocolError) as info:
            parse_price({"app": "nope", "scheme": "phi",
                         "dataset": "arb"})
        assert "bfs" in str(info.value)

    def test_unknown_dataset_and_preprocessing(self):
        with pytest.raises(ProtocolError):
            parse_price({"app": "dc", "scheme": "phi",
                         "dataset": "nope"})
        with pytest.raises(ProtocolError):
            parse_price({"app": "dc", "scheme": "phi",
                         "dataset": "arb", "preprocessing": "random"})

    def test_unknown_scheme_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_price({"app": "dc", "scheme": "push+bogus",
                         "dataset": "arb"})
        with pytest.raises(ProtocolError):
            parse_price({"app": "dc", "scheme": "phi+spzip[turbo]",
                         "dataset": "arb"})

    def test_non_string_scheme_rejected(self):
        with pytest.raises(ProtocolError):
            parse_price({"app": "dc", "scheme": 7, "dataset": "arb"})


class TestParseSweep:
    def test_scheme_group_expands(self):
        cells = parse_sweep({"app": "dc", "schemes": "paper",
                             "dataset": "arb"})
        from repro.schemes import scheme_names
        assert {c.scheme for c in cells} == set(scheme_names("paper"))
        assert all(c.app == "dc" and c.dataset == "arb" for c in cells)

    def test_cross_product_and_dedupe(self):
        cells = parse_sweep({"apps": ["dc", "dc"],
                             "schemes": ["push", "phi"],
                             "datasets": ["arb", "ukl"]})
        assert len(cells) == 4  # duplicate app collapses
        assert len(set(cells)) == len(cells)

    def test_singular_spellings_accepted(self):
        cells = parse_sweep({"app": "dc", "scheme": "push",
                             "dataset": "arb"})
        assert cells == [RunRequest("dc", "push", "arb")]

    def test_plural_and_singular_conflict_rejected(self):
        with pytest.raises(ProtocolError) as info:
            parse_sweep({"app": "dc", "apps": ["dc"],
                         "scheme": "push", "dataset": "arb"})
        assert "not both" in str(info.value)

    def test_empty_list_rejected(self):
        with pytest.raises(ProtocolError):
            parse_sweep({"apps": [], "scheme": "push",
                         "dataset": "arb"})

    def test_missing_axis_rejected(self):
        with pytest.raises(ProtocolError) as info:
            parse_sweep({"app": "dc", "scheme": "push"})
        assert "datasets" in str(info.value)

    def test_price_only_fields_rejected(self):
        with pytest.raises(ProtocolError):
            parse_sweep({"app": "dc", "scheme": "push",
                         "dataset": "arb", "parts": ["adjacency"]})


class TestParseDelta:
    def test_minimal_body_normalizes(self):
        from repro.serve.protocol import parse_delta
        dataset, delta = parse_delta(
            {"dataset": "ukl", "insertions": [[2, 3], [0, 1]],
             "deletions": [[4, 5]]})
        assert dataset == "ukl"
        assert delta.insertions.tolist() == [[0, 1], [2, 3]]
        assert delta.deletions.tolist() == [[4, 5]]

    def test_versioned_dataset_name_accepted(self):
        from repro.serve.protocol import parse_delta
        dataset, _delta = parse_delta(
            {"dataset": "ukl@0123abcd", "insertions": [[0, 1]]})
        assert dataset == "ukl@0123abcd"

    def test_versioned_name_accepted_by_price_too(self):
        cell = parse_price({"app": "dc", "scheme": "phi",
                            "dataset": "ukl@0123abcd"})
        assert cell.dataset == "ukl@0123abcd"
        with pytest.raises(ProtocolError):
            parse_price({"app": "dc", "scheme": "phi",
                         "dataset": "nope@0123abcd"})
        with pytest.raises(ProtocolError, match="malformed"):
            parse_price({"app": "dc", "scheme": "phi",
                         "dataset": "ukl@"})

    def test_insert_values_validated(self):
        from repro.serve.protocol import parse_delta
        _d, delta = parse_delta(
            {"dataset": "ukl", "insertions": [[0, 1]],
             "insert_values": [2.5]})
        assert delta.insert_values is not None
        with pytest.raises(ProtocolError, match="one per insertion"):
            parse_delta({"dataset": "ukl", "insertions": [[0, 1]],
                         "insert_values": [1.0, 2.0]})
        with pytest.raises(ProtocolError, match="one per insertion"):
            parse_delta({"dataset": "ukl", "insertions": [[0, 1]],
                         "insert_values": [True]})

    def test_malformed_edges_rejected(self):
        from repro.serve.protocol import parse_delta
        for bad in ([[0, 1, 2]], [[0]], [0, 1], [[0, "1"]],
                    [[0, True]], [[-1, 2]]):
            with pytest.raises(ProtocolError):
                parse_delta({"dataset": "ukl", "insertions": bad})

    def test_empty_delta_rejected(self):
        from repro.serve.protocol import parse_delta
        with pytest.raises(ProtocolError, match="empty"):
            parse_delta({"dataset": "ukl"})
        # Pure self-loops canonicalize away: still empty.
        with pytest.raises(ProtocolError, match="empty"):
            parse_delta({"dataset": "ukl", "insertions": [[3, 3]]})

    def test_oversized_delta_rejected(self):
        from repro.serve.protocol import MAX_DELTA_EDGES, parse_delta
        edges = [[0, i] for i in range(MAX_DELTA_EDGES + 1)]
        with pytest.raises(ProtocolError, match="limit"):
            parse_delta({"dataset": "ukl", "insertions": edges})

    def test_unknown_field_rejected_with_menu(self):
        from repro.serve.protocol import parse_delta
        with pytest.raises(ProtocolError) as info:
            parse_delta({"dataset": "ukl", "inserts": [[0, 1]]})
        assert "inserts" in str(info.value)
        assert "insertions" in str(info.value)


class TestWireForms:
    def test_request_to_json_carries_cell_description(self):
        request = canonical_request("dc", "phi+spzip", "arb")
        wire = request_to_json(request)
        assert wire["app"] == "dc"
        assert wire["scheme"] == "phi+spzip"
        assert wire["cell"] == request.describe()

    def test_metrics_to_json_is_complete_and_plain(self):
        import json

        from repro.sim.runner import Runner
        metrics = Runner(scale=65536).run("dc", "phi", "arb")
        wire = metrics_to_json(metrics)
        json.dumps(wire)  # JSON-serializable end to end
        assert wire["cycles"] == metrics.cycles
        assert wire["total_traffic"] == metrics.total_traffic
        assert wire["traffic"] == dict(metrics.traffic)
