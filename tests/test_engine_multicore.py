"""Tests for the functional multicore traversal (Sec III-D runtime)."""

import pytest

from repro.config import SystemConfig
from repro.engine import csr_traversal
from repro.engine.multicore import (
    MulticoreTraversal,
    make_chunks,
    parallel_row_traversal,
)
from repro.graph import community_graph
from repro.memory import MemoryHierarchy


def fresh_hierarchy(graph):
    hier = MemoryHierarchy(SystemConfig().scaled(4096), fast=True)
    hier.space.alloc_array("offsets", graph.offsets, "adjacency")
    hier.space.alloc_array("rows", graph.neighbors, "adjacency")
    return hier


@pytest.fixture(scope="module")
def graph():
    return community_graph(512, 4000, seed_stream="mc-tests")


class TestChunking:
    def test_chunks_cover_exactly(self):
        chunks = make_chunks(100, 32)
        assert chunks == [(0, 32), (32, 64), (64, 96), (96, 100)]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            make_chunks(10, 0)


class TestParallelTraversal:
    def test_all_edges_observed_once(self, graph):
        stats = parallel_row_traversal(
            fresh_hierarchy(graph), graph.num_vertices,
            lambda: csr_traversal(row_elem_bytes=4),
            chunk_vertices=32, num_cores=4)
        assert stats["total_elements"] == graph.num_edges
        # One marker per non-... every row emits a marker.
        assert sum(stats["per_core_markers"]) >= graph.num_vertices

    def test_collected_rows_match_graph(self, graph):
        stats = parallel_row_traversal(
            fresh_hierarchy(graph), graph.num_vertices,
            lambda: csr_traversal(row_elem_bytes=4),
            chunk_vertices=64, num_cores=2, collect=True)
        values = []
        for entries in stats["collected"].values():
            values.extend(v for v, marker in entries if not marker)
        assert sorted(values) == sorted(graph.neighbors.tolist())

    def test_parallelism_scales(self, graph):
        one = parallel_row_traversal(
            fresh_hierarchy(graph), graph.num_vertices,
            lambda: csr_traversal(row_elem_bytes=4),
            chunk_vertices=32, num_cores=1)
        four = parallel_row_traversal(
            fresh_hierarchy(graph), graph.num_vertices,
            lambda: csr_traversal(row_elem_bytes=4),
            chunk_vertices=32, num_cores=4)
        speedup = one["makespan_cycles"] / four["makespan_cycles"]
        assert speedup > 2.5

    def test_work_stealing_on_skewed_chunks(self, graph):
        """One huge chunk plus many tiny ones: the fast core drains its
        deal and steals the slow core's queued work."""
        hier = fresh_hierarchy(graph)
        from repro.dcl import pack_range
        from repro.engine.pipelines import INPUT_QUEUE, ROWS_QUEUE

        def feed(fetcher, chunk):
            fetcher.enqueue(INPUT_QUEUE, 0, marker=True)
            fetcher.enqueue(INPUT_QUEUE, pack_range(chunk[0],
                                                    chunk[1] + 1))

        traversal = MulticoreTraversal(
            hier, lambda: csr_traversal(row_elem_bytes=4), feed,
            [ROWS_QUEUE], num_cores=2)
        big = (0, 400)
        tinies = make_chunks(graph.num_vertices, 8)[50:]
        stats = traversal.run([big] + tinies)
        expected = int(graph.out_degrees()[0:400].sum()
                       + graph.out_degrees()[400:].sum())
        assert stats["total_elements"] == expected
        assert stats["steals"] > 0

    def test_per_core_counts_sum(self, graph):
        stats = parallel_row_traversal(
            fresh_hierarchy(graph), graph.num_vertices,
            lambda: csr_traversal(row_elem_bytes=4),
            chunk_vertices=16, num_cores=8)
        assert sum(stats["per_core_elements"]) == stats["total_elements"]
