"""The Dataflow Configuration Language — SpZip's HW/SW interface."""

from repro.dcl.operators import (
    NEVER,
    CompressOp,
    DecompressOp,
    IndirectOp,
    MemQueueOp,
    Operator,
    RangeFetchOp,
    StreamWriteOp,
    pack_range,
    pack_tuple,
    unpack_range,
    unpack_tuple,
)
from repro.dcl.parser import DclSyntaxError, parse_dcl
from repro.dcl.program import (
    program_to_dot,
    COMPRESSOR_KINDS,
    FETCHER_KINDS,
    OpSpec,
    Program,
    ProgramError,
    QueueSpec,
)
from repro.dcl.queue import Entry, MarkerQueue
from repro.dcl.scheduler import RoundRobinScheduler

__all__ = [
    "COMPRESSOR_KINDS",
    "CompressOp",
    "DclSyntaxError",
    "DecompressOp",
    "Entry",
    "FETCHER_KINDS",
    "IndirectOp",
    "MarkerQueue",
    "MemQueueOp",
    "NEVER",
    "OpSpec",
    "Operator",
    "Program",
    "ProgramError",
    "QueueSpec",
    "RangeFetchOp",
    "RoundRobinScheduler",
    "StreamWriteOp",
    "pack_range",
    "program_to_dot",
    "pack_tuple",
    "parse_dcl",
    "unpack_range",
    "unpack_tuple",
]
