"""DCL traversal pipelines for the non-CSR sparse formats (Sec II-B).

The paper argues the DCL's generality from exactly these formats: "The
DCL can also handle many other sparse formats ... including matrices in
DCSR, COO, DIA, or ELL."  Each builder here is a concrete, runnable DCL
program for one of them, operating over the layouts in
:mod:`repro.sparse.formats`:

* **COO** — two parallel range fetches stream the row and column arrays
  in lockstep (the "coordinates and values stored separately" pattern
  the paper notes after Fig 1);
* **DCSR** — three stages: stored-row ids, their offsets (boundary
  mode), and the column payload — one range-fetch deeper than CSR;
* **ELL** — fixed-width rows mean row extents are *computable*, so a
  single range fetch in pair mode suffices (the core, or an upstream
  generator, supplies ``(v*width, (v+1)*width)``); padding entries pass
  through and are dropped by the consumer on the pad sentinel.

DIA needs only dense range fetches (one per diagonal) and is covered by
:func:`csr_traversal`-style programs over its lanes.
"""

from __future__ import annotations

from repro.dcl.program import Program

COO_ROWS_QUEUE = "coo_rows"
COO_COLS_QUEUE = "coo_cols"
DCSR_ROWIDS_QUEUE = "stored_row_ids"
DCSR_COLS_QUEUE = "cols"
ELL_COLS_QUEUE = "ell_cols"


def coo_traversal(rows_region: str = "coo_rows_arr",
                  cols_region: str = "coo_cols_arr") -> Program:
    """Stream a COO matrix: parallel row/col range fetches.

    The core enqueues the same nonzero range (packed) to both inputs and
    dequeues (row, col) pairs in lockstep.
    """
    p = Program()
    p.queue("input_rows", elem_bytes=8)
    p.queue("input_cols", elem_bytes=8)
    p.queue(COO_ROWS_QUEUE, elem_bytes=4)
    p.queue(COO_COLS_QUEUE, elem_bytes=4)
    p.range_fetch("fetch_rows", "input_rows", [COO_ROWS_QUEUE],
                  base=rows_region, elem_bytes=4,
                  emit_range_markers=False)
    p.range_fetch("fetch_cols", "input_cols", [COO_COLS_QUEUE],
                  base=cols_region, elem_bytes=4,
                  emit_range_markers=False)
    return p


def dcsr_traversal(rowids_region: str = "dcsr_rowids",
                   offsets_region: str = "dcsr_offsets",
                   cols_region: str = "dcsr_cols") -> Program:
    """Walk a DCSR matrix: stored-row ids + offsets + columns.

    The core enqueues the stored-row index range to ``input_ids`` (to
    learn which rows exist) and the offsets boundary range to
    ``input_offsets``; rows come out marker-delimited like CSR's.
    """
    p = Program()
    p.queue("input_ids", elem_bytes=8)
    p.queue("input_offsets", elem_bytes=8)
    p.queue(DCSR_ROWIDS_QUEUE, elem_bytes=4)
    p.queue("offsetsQ", elem_bytes=8)
    p.queue(DCSR_COLS_QUEUE, elem_bytes=4)
    p.range_fetch("fetch_row_ids", "input_ids", [DCSR_ROWIDS_QUEUE],
                  base=rowids_region, elem_bytes=4,
                  emit_range_markers=False)
    p.range_fetch("fetch_offsets", "input_offsets", ["offsetsQ"],
                  base=offsets_region, elem_bytes=8,
                  emit_range_markers=False)
    p.range_fetch("fetch_cols", "offsetsQ", [DCSR_COLS_QUEUE],
                  base=cols_region, elem_bytes=4,
                  use_end_as_next_start=True, marker_value=1)
    return p


def ell_traversal(cols_region: str = "ell_cols_arr") -> Program:
    """Walk an ELL matrix: one pair-mode range fetch over the slab.

    Fixed-width rows make extents computable, so the core enqueues
    ``pack_range(v * width, (v + 1) * width)`` per row (or one packed
    range per row group); pad sentinels flow through for the consumer
    to drop.
    """
    p = Program()
    p.queue("input", elem_bytes=8)
    p.queue(ELL_COLS_QUEUE, elem_bytes=4)
    p.range_fetch("fetch_cols", "input", [ELL_COLS_QUEUE],
                  base=cols_region, elem_bytes=4, marker_value=1)
    return p
