"""Connected Components (CC) — non-all-active label propagation.

Classic Ligra-style CC: every vertex starts in its own component; active
vertices push their component id to out-neighbours, which keep the
minimum (treating the graph as symmetric for connectivity, as Ligra
does).  A vertex stays active while its label keeps changing, so the
frontier starts all-active and decays — the mix the paper's CC numbers
reflect.  Update payloads are component ids (vertex ids), which compress
with graph id locality; the paper's order-insensitive sorting experiment
(Sec V-C) uses CC updates.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.csr import CsrGraph
from repro.runtime.workload import Iteration, Workload, sample_iterations


def _symmetric_edges(graph: CsrGraph) -> Tuple[np.ndarray, np.ndarray]:
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                    graph.out_degrees())
    dst = graph.neighbors.astype(np.int64)
    return np.concatenate([src, dst]), np.concatenate([dst, src])


def reference(graph: CsrGraph, max_iterations: int = 200) -> np.ndarray:
    """Component labels (min vertex id in each component)."""
    labels, _ = _run(graph, max_iterations)
    return labels


def _run(graph: CsrGraph, max_iterations: int):
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.uint32)
    sym_src, sym_dst = _symmetric_edges(graph)
    active_mask = np.ones(n, dtype=bool)
    history: List[Tuple[np.ndarray, np.ndarray]] = []
    for _ in range(max_iterations):
        active = np.flatnonzero(active_mask).astype(np.int64)
        if active.size == 0:
            break
        history.append((active, labels[active].copy()))
        live = active_mask[sym_src]
        new_labels = labels.copy()
        np.minimum.at(new_labels, sym_dst[live], labels[sym_src[live]])
        active_mask = new_labels < labels
        labels = new_labels
    return labels, history


def build_workload(graph: CsrGraph, max_iterations: int = 200) -> Workload:
    labels, history = _run(graph, max_iterations)
    degrees = graph.out_degrees()
    iterations = []
    for index, (active, active_labels) in enumerate(history):
        update_values = np.repeat(active_labels, degrees[active])
        iterations.append(Iteration(sources=active,
                                    src_values=active_labels,
                                    update_values=update_values,
                                    weight=1.0, index=index))
    return Workload(app="cc", graph=graph,
                    iterations=sample_iterations(iterations),
                    dst_value_bytes=4, src_value_bytes=4, update_bytes=8,
                    frontier_based=True, dst_values=labels)
