"""Functional tests for the SpZip fetcher on the paper's pipelines."""

import numpy as np
import pytest

from repro.compression import RleCodec
from repro.config import SpZipConfig, SystemConfig
from repro.dcl import Program, pack_range
from repro.engine import (
    DriveRequest,
    ACTIVE_QUEUE,
    CONTRIBS_QUEUE,
    INPUT_QUEUE,
    NEIGH_QUEUE,
    OFFSETS_INPUT_QUEUE,
    ROWS_QUEUE,
    EngineStall,
    Fetcher,
    bfs_push,
    compressed_csr_traversal,
    csr_traversal,
    drive,
    pagerank_push,
)
from repro.graph import CompressedCsr, CsrGraph, community_graph
from repro.memory import AddressSpace, MemoryHierarchy


def fig1_matrix():
    return CsrGraph(np.array([0, 2, 4, 5, 7]),
                    np.array([1, 2, 0, 2, 3, 1, 2], dtype=np.uint32))


def plain_space(graph):
    space = AddressSpace()
    space.alloc_array("offsets", graph.offsets, "adjacency")
    space.alloc_array("rows", graph.neighbors, "adjacency")
    return space


class TestCsrTraversal:
    """Fig 2: the DCL pipeline traversing the Fig 1 matrix."""

    def test_full_matrix_traversal(self):
        g = fig1_matrix()
        f = Fetcher(SpZipConfig(), plain_space(g))
        f.load_program(csr_traversal(row_elem_bytes=4))
        res = drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 5)]}, consume=[ROWS_QUEUE]))
        assert res.chunks(ROWS_QUEUE) == [[1, 2], [0, 2], [3], [1, 2]]

    def test_partial_range(self):
        g = fig1_matrix()
        f = Fetcher(SpZipConfig(), plain_space(g))
        f.load_program(csr_traversal(row_elem_bytes=4))
        res = drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(1, 4)]}, consume=[ROWS_QUEUE]))
        assert res.chunks(ROWS_QUEUE) == [[0, 2], [3]]

    def test_empty_row_yields_bare_marker(self):
        g = CsrGraph(np.array([0, 2, 2, 3]),
                     np.array([1, 2, 0], dtype=np.uint32))
        f = Fetcher(SpZipConfig(), plain_space(g))
        f.load_program(csr_traversal(row_elem_bytes=4))
        res = drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 4)]}, consume=[ROWS_QUEUE]))
        assert res.chunks(ROWS_QUEUE) == [[1, 2], [], [0]]

    def test_traversal_on_generated_graph(self):
        g = community_graph(300, 2400, seed_stream="fetch-test")
        f = Fetcher(SpZipConfig(), plain_space(g))
        f.load_program(csr_traversal(row_elem_bytes=4))
        res = drive(f, DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, g.num_vertices + 1)]},
            consume=[ROWS_QUEUE], max_cycles=10 ** 7))
        chunks = res.chunks(ROWS_QUEUE)
        assert len(chunks) == g.num_vertices
        for v in range(g.num_vertices):
            assert chunks[v] == g.row(v).tolist()


class TestCompressedTraversal:
    """Fig 3: decompression operator inline with the traversal."""

    def test_roundtrip_through_engine(self):
        g = fig1_matrix()
        cc = CompressedCsr(g)
        space = AddressSpace()
        space.alloc_array("offsets", cc.offsets, "adjacency")
        space.alloc_array("payload",
                          np.frombuffer(cc.payload, dtype=np.uint8),
                          "adjacency")
        f = Fetcher(SpZipConfig(), space)
        f.load_program(compressed_csr_traversal())
        res = drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 5)]}, consume=[ROWS_QUEUE]))
        assert res.chunks(ROWS_QUEUE) == [[1, 2], [0, 2], [3], [1, 2]]

    def test_alternate_codec(self):
        g = fig1_matrix()
        cc = CompressedCsr(g, codec=RleCodec())
        space = AddressSpace()
        space.alloc_array("offsets", cc.offsets, "adjacency")
        space.alloc_array("payload",
                          np.frombuffer(cc.payload, dtype=np.uint8),
                          "adjacency")
        f = Fetcher(SpZipConfig(), space)
        f.load_program(compressed_csr_traversal(codec=RleCodec()))
        res = drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 5)]}, consume=[ROWS_QUEUE]))
        assert res.chunks(ROWS_QUEUE) == [[1, 2], [0, 2], [3], [1, 2]]


class TestPageRankPipeline:
    """Fig 5 / Fig 11: adjacency + source data + destination prefetch."""

    def make(self, compressed):
        g = fig1_matrix()
        contribs = np.array([0.1, 0.2, 0.3, 0.4])
        hier = MemoryHierarchy(SystemConfig().scaled(4096), fast=True)
        space = hier.space
        if compressed:
            cc = CompressedCsr(g)
            space.alloc_array("offsets", cc.offsets, "adjacency")
            space.alloc_array("neighbors",
                              np.frombuffer(cc.payload, dtype=np.uint8),
                              "adjacency")
        else:
            space.alloc_array("offsets", g.offsets, "adjacency")
            space.alloc_array("neighbors", g.neighbors, "adjacency")
        space.alloc_array("contribs", contribs, "source_vertex")
        space.alloc_array("scores", np.zeros(4), "destination_vertex")
        fetcher = Fetcher.for_core(hier, core=0)
        fetcher.load_program(pagerank_push(compressed=compressed))
        return fetcher, hier, contribs

    @pytest.mark.parametrize("compressed", [False, True])
    def test_neighbors_and_contribs(self, compressed):
        fetcher, _hier, contribs = self.make(compressed)
        res = drive(fetcher, DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, 4)],
                   OFFSETS_INPUT_QUEUE: [pack_range(0, 5)]},
            consume=[NEIGH_QUEUE, CONTRIBS_QUEUE]))
        assert res.chunks(NEIGH_QUEUE) == [[1, 2], [0, 2], [3], [1, 2]]
        got = np.frombuffer(np.array(res.values(CONTRIBS_QUEUE),
                                     dtype=np.uint64).tobytes(),
                            dtype=np.float64)
        assert np.array_equal(got, contribs)

    def test_prefetch_touches_destination_data(self):
        fetcher, hier, _ = self.make(compressed=False)
        drive(fetcher, DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, 4)],
                   OFFSETS_INPUT_QUEUE: [pack_range(0, 5)]},
            consume=[NEIGH_QUEUE, CONTRIBS_QUEUE]))
        assert hier.traffic_by_class()["destination_vertex"] > 0

    def test_fetcher_issues_to_l2_not_l1(self):
        fetcher, hier, _ = self.make(compressed=False)
        drive(fetcher, DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, 4)],
                   OFFSETS_INPUT_QUEUE: [pack_range(0, 5)]},
            consume=[NEIGH_QUEUE, CONTRIBS_QUEUE]))
        assert hier.l1[0].stats.accesses == 0
        assert hier.l2[0].stats.accesses > 0


class TestBfsPipeline:
    """Fig 6: the frontier adds an extra indirection level."""

    def test_frontier_driven_traversal(self):
        g = fig1_matrix()
        space = AddressSpace()
        space.alloc_array("frontier", np.array([0, 3], dtype=np.uint32),
                          "updates")
        space.alloc_array("offsets", g.offsets, "adjacency")
        space.alloc_array("neighbors", g.neighbors, "adjacency")
        space.alloc_array("dists", np.zeros(4, dtype=np.int64),
                          "destination_vertex")
        f = Fetcher(SpZipConfig(), space)
        f.load_program(bfs_push())
        res = drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 2)]},
                                    consume=[NEIGH_QUEUE, ACTIVE_QUEUE]))
        assert res.values(ACTIVE_QUEUE) == [0, 3]
        assert res.chunks(NEIGH_QUEUE) == [[1, 2], [1, 2]]


class TestEngineMechanics:
    def test_program_kind_restriction(self):
        from repro.compression import DeltaCodec
        p = Program()
        p.queue("in", 4)
        p.queue("out", 1)
        p.compress("c", "in", ["out"], codec=DeltaCodec())
        f = Fetcher(SpZipConfig(), AddressSpace())
        with pytest.raises(Exception):
            f.load_program(p)

    def test_run_without_program_raises(self):
        f = Fetcher(SpZipConfig(), AddressSpace())
        with pytest.raises(RuntimeError):
            f.tick()

    def test_stall_guard_fires_when_output_never_drained(self):
        g = fig1_matrix()
        f = Fetcher(SpZipConfig(scratchpad_bytes=128), plain_space(g))
        f.load_program(csr_traversal(row_elem_bytes=4))
        f.enqueue(INPUT_QUEUE, pack_range(0, 5))
        with pytest.raises(EngineStall):
            f.run(max_cycles=10 ** 6)  # nobody dequeues rows

    def test_outstanding_requests_bounded(self):
        g = community_graph(200, 1600, seed_stream="au-test")
        space = plain_space(g)
        config = SpZipConfig(au_outstanding_lines=2)
        f = Fetcher(config, space, mem_latency=50)
        f.load_program(csr_traversal(row_elem_bytes=4))
        f.enqueue(INPUT_QUEUE, pack_range(0, 50))
        max_inflight = 0
        for _ in range(2000):
            f.tick()
            max_inflight = max(max_inflight, len(f._inflight))
            while f.dequeue(ROWS_QUEUE):
                pass
        assert max_inflight <= 2

    def test_deeper_queues_do_not_slow_traversal(self):
        """More scratchpad -> at least as much decoupling (Fig 21 trend)."""
        g = community_graph(400, 3200, seed_stream="decouple-test")

        def run(scratch):
            f = Fetcher(SpZipConfig(scratchpad_bytes=scratch),
                        plain_space(g), mem_latency=60)
            f.load_program(csr_traversal(row_elem_bytes=4))
            res = drive(f, DriveRequest(
                feeds={INPUT_QUEUE:
                       [pack_range(0, g.num_vertices + 1)]},
                consume=[ROWS_QUEUE], dequeues_per_cycle=4,
                max_cycles=10 ** 7))
            return res.cycles

        assert run(2048) <= run(256) * 1.05

    def test_outstanding_requests_hide_memory_latency(self):
        """Decoupling: with N outstanding requests, N misses overlap, so
        the traversal runs close to N-times faster than serialized."""
        g = community_graph(400, 3200, seed_stream="latency-test")

        def run(outstanding):
            config = SpZipConfig(au_outstanding_lines=outstanding)
            f = Fetcher(config, plain_space(g), mem_latency=60)
            f.load_program(csr_traversal(row_elem_bytes=4))
            res = drive(f, DriveRequest(
                feeds={INPUT_QUEUE:
                       [pack_range(0, g.num_vertices + 1)]},
                consume=[ROWS_QUEUE], dequeues_per_cycle=8,
                max_cycles=10 ** 7))
            return res.cycles

        assert run(8) < run(1) / 3
