"""Compressed Sparse Row graphs (paper Fig 1 / Fig 4).

CSR is the adjacency representation every algorithm in the paper uses:
``offsets[v]`` is the index of vertex ``v``'s first out-edge in the
``neighbors`` array.  (As the paper is careful to note, "compressed" in CSR
means zeros are not stored; entropy compression of CSR is what SpZip adds —
see :mod:`repro.graph.compressed_csr`.)

Neighbour lists are kept sorted within each row: graph semantics are
order-insensitive, and sorted rows are exactly what makes delta encoding
effective on neighbour ids.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

OFFSET_DTYPE = np.int64
VERTEX_DTYPE = np.uint32


class CsrGraph:
    """Directed graph in CSR form, with optional per-edge values."""

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray,
                 values: Optional[np.ndarray] = None,
                 check: bool = True) -> None:
        self.offsets = np.asarray(offsets, dtype=OFFSET_DTYPE)
        self.neighbors = np.asarray(neighbors, dtype=VERTEX_DTYPE)
        self.values = None if values is None else np.asarray(values)
        self._digest: Optional[str] = None
        #: Paths of this graph's arrays in the shared graph store, once
        #: spilled (see :mod:`repro.graph.shared`); pickling then ships
        #: paths instead of array bytes.
        self._store_paths: Optional[Tuple[str, str, Optional[str]]] = None
        if check:
            self._validate()

    def __reduce__(self):
        from repro.graph.shared import _reduce_graph
        return _reduce_graph(self)

    def _validate(self) -> None:
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ValueError("offsets must be a non-empty 1-D array")
        if self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if (np.diff(self.offsets) < 0).any():
            raise ValueError("offsets must be non-decreasing")
        if self.offsets[-1] != self.neighbors.size:
            raise ValueError("offsets end must equal edge count")
        if self.neighbors.size and self.neighbors.max() >= self.num_vertices:
            raise ValueError("neighbor id out of range")
        if self.values is not None and self.values.size != self.neighbors.size:
            raise ValueError("values must have one entry per edge")

    # -- shape --------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        return self.neighbors.size

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(1, self.num_vertices)

    def content_digest(self) -> str:
        """Memoized digest of the full graph content.

        Identifies a graph instance by value (structure + edge values),
        so memo tables keyed on it cannot collide across distinct
        graphs that merely share a vertex count.
        """
        if self._digest is None:
            import hashlib
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.ascontiguousarray(self.offsets).tobytes())
            digest.update(np.ascontiguousarray(self.neighbors)
                          .tobytes())
            if self.values is not None:
                digest.update(np.ascontiguousarray(self.values)
                              .tobytes())
            self._digest = digest.hexdigest()
        return self._digest

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def in_degrees(self) -> np.ndarray:
        counts = np.bincount(self.neighbors,
                             minlength=self.num_vertices)
        return counts.astype(OFFSET_DTYPE)

    # -- access --------------------------------------------------------------

    def row(self, vertex: int) -> np.ndarray:
        """Sorted out-neighbours of ``vertex``."""
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(f"vertex {vertex} out of range")
        return self.neighbors[self.offsets[vertex]:self.offsets[vertex + 1]]

    def row_values(self, vertex: int) -> np.ndarray:
        if self.values is None:
            raise ValueError("graph has no edge values")
        return self.values[self.offsets[vertex]:self.offsets[vertex + 1]]

    def iter_rows(self) -> Iterable[Tuple[int, np.ndarray]]:
        for vertex in range(self.num_vertices):
            yield vertex, self.row(vertex)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int, src: np.ndarray, dst: np.ndarray,
                   values: Optional[np.ndarray] = None,
                   dedup: bool = True,
                   drop_self_loops: bool = True) -> "CsrGraph":
        """Build a CSR graph from an edge list (rows end up sorted)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if src.size and (src.min() < 0 or src.max() >= num_vertices
                         or dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("edge endpoint out of range")
        if values is not None:
            values = np.asarray(values)
        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            if values is not None:
                values = values[keep]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if values is not None:
            values = values[order]
        if dedup and src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst = src[keep], dst[keep]
            if values is not None:
                values = values[keep]
        offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
        np.add.at(offsets, src + 1, 1)
        np.cumsum(offsets, out=offsets)
        return cls(offsets, dst.astype(VERTEX_DTYPE), values)

    def apply(self, delta) -> "CsrGraph":
        """The graph with a :class:`~repro.graph.delta.GraphDelta`
        applied — bit-identical to rebuilding from the mutated edge
        list with :meth:`from_edges` (see :mod:`repro.graph.delta`)."""
        from repro.graph.delta import apply_delta
        return apply_delta(self, delta)

    def transpose(self) -> "CsrGraph":
        """Reverse every edge (incoming adjacency, for Pull-style access)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        self.out_degrees())
        return CsrGraph.from_edges(self.num_vertices,
                                   self.neighbors.astype(np.int64), src,
                                   values=self.values,
                                   dedup=False, drop_self_loops=False)

    def relabel(self, perm: np.ndarray) -> "CsrGraph":
        """Renumber vertices: new id of old vertex ``v`` is ``perm[v]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.size != self.num_vertices:
            raise ValueError("permutation size mismatch")
        if np.sort(perm).tolist() != list(range(self.num_vertices)):
            raise ValueError("perm is not a permutation")
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        self.out_degrees())
        return CsrGraph.from_edges(self.num_vertices, perm[src],
                                   perm[self.neighbors.astype(np.int64)],
                                   values=self.values,
                                   dedup=False, drop_self_loops=False)

    # -- footprint -------------------------------------------------------------

    def adjacency_bytes(self, offset_bytes: int = 8,
                        neighbor_bytes: int = 4) -> int:
        """Uncompressed footprint of the adjacency structure."""
        return (self.offsets.size * offset_bytes
                + self.neighbors.size * neighbor_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CsrGraph(vertices={self.num_vertices}, "
                f"edges={self.num_edges})")
