"""Shared engine machinery: time-multiplexed execution + the access unit.

Both SpZip engines (fetcher, compressor) are the same machine (Figs
10/12): a scratchpad of queues, a set of operator contexts sharing a few
functional units, a round-robin scheduler, and a memory port.  They
differ in which operator kinds they host and where their memory port
enters the hierarchy (fetcher -> its core's L2; compressor -> the LLC).

The **access unit** (AU) is where decoupling comes from: it accepts up to
``au_outstanding_lines`` in-flight requests and delivers their responses
*in order* as they complete, so a traversal keeps many misses in flight
while earlier data drains into queues.  Shallow queues throttle this —
responses stall when their output queue is full — which is exactly the
scratchpad-size sensitivity of Fig 21.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.config import SpZipConfig
from repro.dcl.operators import Operator
from repro.dcl.program import Program
from repro.dcl.queue import Entry, MarkerQueue
from repro.dcl.scheduler import RoundRobinScheduler
from repro.memory.address import AddressSpace

#: Memory port signature: (addr, nbytes, write) -> latency cycles.
MemPort = Callable[[int, int, bool], int]


@dataclass
class _InflightRequest:
    complete_at: int
    operator: Operator
    entries: List[Entry]
    out_queues: Sequence[MarkerQueue]


class EngineStall(RuntimeError):
    """The engine made no progress for too long (deadlock guard)."""


class SpZipEngine:
    """Time-multiplexed DCL execution engine."""

    #: operator kinds this engine type may host; subclasses narrow it.
    allowed_kinds: Optional[frozenset] = None

    def __init__(self, config: SpZipConfig, space: AddressSpace,
                 mem_port: Optional[MemPort] = None,
                 mem_latency: int = 20) -> None:
        self.config = config
        self.space = space
        self._mem_port = mem_port
        self._flat_latency = mem_latency
        self.cycle = 0
        self.queues: Dict[str, MarkerQueue] = {}
        self.operators: List[Operator] = []
        self.scheduler: Optional[RoundRobinScheduler] = None
        self._inflight: Deque[_InflightRequest] = deque()
        self.program: Optional[Program] = None
        # Statistics.
        self.mem_reads = 0
        self.mem_bytes_read = 0
        self.mem_writes = 0
        self.mem_bytes_written = 0

    # -- configuration (memory-mapped I/O in hardware) -------------------------

    def load_program(self, program: Program) -> None:
        """Validate and install a DCL program (Sec III-B, configure)."""
        program.validate(self.config, self.allowed_kinds)
        self.queues, self.operators = program.instantiate(
            self.config, self._resolve_addr)
        self.scheduler = RoundRobinScheduler(self.operators)
        self._inflight.clear()
        self.program = program

    def _resolve_addr(self, base) -> int:
        if isinstance(base, str):
            return self.space.region(base).base
        return int(base)

    # -- core-facing queue interface (enqueue/dequeue instructions) -----------

    def enqueue(self, queue: str, value: int, marker: bool = False) -> bool:
        """Core-side push; returns False when the queue is full."""
        return self.queues[queue].try_push(value, marker)

    def dequeue(self, queue: str) -> Optional[Entry]:
        """Core-side pop; None when empty (core would retry/spin)."""
        return self.queues[queue].try_pop()

    # -- memory services used by operators --------------------------------------

    def _charge(self, addr: int, nbytes: int, write: bool) -> int:
        if write:
            self.mem_writes += 1
            self.mem_bytes_written += nbytes
        else:
            self.mem_reads += 1
            self.mem_bytes_read += nbytes
        if self._mem_port is not None:
            return self._mem_port(addr, nbytes, write)
        return self._flat_latency

    def mem_read_elems(self, addr: int, count: int,
                       elem_bytes: int) -> np.ndarray:
        """Functional load of ``count`` elements (latency charged at issue)."""
        if count == 0:
            return np.empty(0, dtype=np.uint64)
        values = self.space.load_elems(addr, count,
                                       np.dtype(f"u{elem_bytes}"))
        return values

    def mem_read_charged(self, addr: int, count: int,
                         elem_bytes: int) -> np.ndarray:
        """Functional load that also charges the memory port (for units
        like the MQU that access memory synchronously, outside the AU)."""
        values = self.mem_read_elems(addr, count, elem_bytes)
        if count:
            self._charge(addr, count * elem_bytes, write=False)
        return values

    def mem_write_bytes(self, addr: int, data: bytes) -> None:
        """Functional store through the engine's memory port."""
        self.space.store(addr, data)
        self._charge(addr, len(data), write=True)

    # -- access unit -------------------------------------------------------------

    def au_can_issue(self) -> bool:
        return len(self._inflight) < self.config.au_outstanding_lines

    def au_issue(self, operator: Operator, addr: int, nbytes: int,
                 entries: List[Entry],
                 out_queues: Sequence[MarkerQueue]) -> None:
        """Queue a memory request; its entries deliver when it completes."""
        latency = self._charge(addr, nbytes, write=False) if nbytes else 0
        self._inflight.append(_InflightRequest(self.cycle + latency,
                                               operator, entries,
                                               out_queues))

    def stage_passthrough(self, operator: Operator, entry: Entry) -> None:
        """Forward an entry (marker passthrough) in request order."""
        self._inflight.append(_InflightRequest(self.cycle, operator,
                                               [entry],
                                               operator.out_queues))

    def _deliver_responses(self) -> bool:
        """Drain completed AU responses, in order, up to FU throughput.

        Responses always fit: issuing operators reserved their output
        space up front (credit-based flow control), so the in-order FIFO
        can never block head-of-line.
        """
        progressed = False
        budget = self.config.fu_bytes_per_cycle
        while self._inflight and budget > 0:
            head = self._inflight[0]
            if head.complete_at > self.cycle:
                break
            while head.entries and budget > 0:
                entry = head.entries.pop(0)
                for queue in head.out_queues:
                    queue.push(entry.value, entry.marker, reserved=True)
                progressed = True
                budget -= 1
            if head.entries:
                break
            self._inflight.popleft()
        return progressed

    # -- execution -----------------------------------------------------------------

    def tick(self) -> bool:
        """Advance one cycle; returns True if any work happened."""
        if self.scheduler is None:
            raise RuntimeError("no program loaded")
        progressed = self._deliver_responses()
        op = self.scheduler.pick(self)
        if op is not None:
            op.fire(self)
            progressed = True
        elif self._inflight:
            progressed = True  # waiting on memory is progress
        self.cycle += 1
        return progressed

    def run(self, max_cycles: int = 10_000_000) -> int:
        """Tick until fully drained; returns cycles spent."""
        start = self.cycle
        idle = 0
        while not self.is_drained():
            if self.tick():
                idle = 0
            else:
                idle += 1
                if idle > 10_000:
                    raise EngineStall(
                        f"engine made no progress for {idle} cycles "
                        f"(output queue never drained?)")
            if self.cycle - start > max_cycles:
                raise EngineStall(f"exceeded {max_cycles} cycles")
        return self.cycle - start

    def is_drained(self) -> bool:
        """No in-flight requests, no operator work, internal queues empty.

        Output queues (consumed by the core) may still hold data.
        """
        if self._inflight:
            return False
        if any(not op.done(self) for op in self.operators):
            return False
        outputs = set(self.program.output_queues()) if self.program else set()
        return all(q.is_empty or name in outputs
                   for name, q in self.queues.items())


def engine_stats(engine: "SpZipEngine") -> Dict[str, object]:
    """One-glance summary of an engine run (debug/report helper)."""
    scheduler = engine.scheduler
    queues = {
        name: {"pushed": q.total_pushed,
               "high_water_bytes": q.high_water_bytes}
        for name, q in engine.queues.items()
    }
    return {
        "cycles": engine.cycle,
        "mem_reads": engine.mem_reads,
        "mem_bytes_read": engine.mem_bytes_read,
        "mem_writes": engine.mem_writes,
        "mem_bytes_written": engine.mem_bytes_written,
        "operator_fires": dict(scheduler.fires_by_op)
        if scheduler else {},
        "activity_factor": scheduler.activity_factor()
        if scheduler else 0.0,
        "queues": queues,
    }
