"""Unit + property tests for CSR graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CsrGraph


def tiny_graph():
    """The paper's Fig 4 adjacency matrix."""
    return CsrGraph(np.array([0, 2, 4, 5, 7]),
                    np.array([1, 2, 0, 2, 3, 1, 2], dtype=np.uint32))


edge_lists = st.integers(2, 30).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                 max_size=120),
    )
)


class TestConstruction:
    def test_fig4_shape(self):
        g = tiny_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 7
        assert g.avg_degree == pytest.approx(7 / 4)

    def test_rows_match_fig4(self):
        g = tiny_graph()
        assert g.row(0).tolist() == [1, 2]
        assert g.row(1).tolist() == [0, 2]
        assert g.row(2).tolist() == [3]
        assert g.row(3).tolist() == [1, 2]

    def test_from_edges_sorts_rows(self):
        g = CsrGraph.from_edges(3, [0, 0, 2], [2, 1, 0])
        assert g.row(0).tolist() == [1, 2]

    def test_from_edges_dedup(self):
        g = CsrGraph.from_edges(3, [0, 0, 0], [1, 1, 2])
        assert g.num_edges == 2

    def test_from_edges_drops_self_loops(self):
        g = CsrGraph.from_edges(3, [0, 1], [0, 2])
        assert g.num_edges == 1

    def test_from_edges_keeps_self_loops_when_asked(self):
        g = CsrGraph.from_edges(3, [0, 1], [0, 2],
                                drop_self_loops=False)
        assert g.num_edges == 2

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph.from_edges(2, [0], [5])

    def test_validation_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            CsrGraph(np.array([1, 2]), np.array([0], dtype=np.uint32))
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 2, 1]), np.array([0, 0],
                                                   dtype=np.uint32))
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 1]), np.array([7], dtype=np.uint32))

    def test_values_length_checked(self):
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 1]), np.array([0], dtype=np.uint32),
                     values=np.array([1.0, 2.0]))


class TestDegrees:
    def test_out_degrees(self):
        assert tiny_graph().out_degrees().tolist() == [2, 2, 1, 2]

    def test_in_degrees(self):
        # Fig 4: incoming counts per column.
        assert tiny_graph().in_degrees().tolist() == [1, 2, 3, 1]


class TestTranspose:
    def test_transpose_reverses_edges(self):
        g = tiny_graph()
        t = g.transpose()
        assert t.num_edges == g.num_edges
        assert t.row(2).tolist() == [0, 1, 3]

    def test_double_transpose_is_identity(self):
        g = tiny_graph()
        tt = g.transpose().transpose()
        assert np.array_equal(tt.offsets, g.offsets)
        assert np.array_equal(tt.neighbors, g.neighbors)

    @settings(max_examples=25, deadline=None)
    @given(edge_lists)
    def test_transpose_preserves_edge_multiset(self, case):
        n, edges = case
        src = [e[0] for e in edges]
        dst = [e[1] for e in edges]
        g = CsrGraph.from_edges(n, src, dst)
        t = g.transpose()
        fwd = set()
        for v, row in g.iter_rows():
            fwd.update((v, int(u)) for u in row)
        back = set()
        for v, row in t.iter_rows():
            back.update((int(u), v) for u in row)
        assert fwd == back


class TestRelabel:
    def test_relabel_reverse_permutation(self):
        g = tiny_graph()
        perm = np.array([3, 2, 1, 0])
        r = g.relabel(perm)
        # old edge 0->1 becomes 3->2
        assert 2 in r.row(3).tolist()
        assert r.num_edges == g.num_edges

    def test_relabel_identity(self):
        g = tiny_graph()
        r = g.relabel(np.arange(4))
        assert np.array_equal(r.neighbors, g.neighbors)

    def test_relabel_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            tiny_graph().relabel(np.array([0, 0, 1, 2]))
        with pytest.raises(ValueError):
            tiny_graph().relabel(np.array([0, 1]))

    @settings(max_examples=25, deadline=None)
    @given(edge_lists, st.randoms())
    def test_relabel_preserves_structure(self, case, rand):
        n, edges = case
        g = CsrGraph.from_edges(n, [e[0] for e in edges],
                                [e[1] for e in edges])
        perm = list(range(n))
        rand.shuffle(perm)
        perm = np.array(perm)
        r = g.relabel(perm)
        assert r.num_edges == g.num_edges
        assert np.array_equal(np.sort(r.out_degrees()),
                              np.sort(g.out_degrees()))
        for v in range(n):
            expected = sorted(perm[g.row(v).astype(np.int64)].tolist())
            assert r.row(int(perm[v])).tolist() == expected


class TestMisc:
    def test_row_bounds(self):
        with pytest.raises(IndexError):
            tiny_graph().row(4)

    def test_row_values_requires_values(self):
        with pytest.raises(ValueError):
            tiny_graph().row_values(0)

    def test_adjacency_bytes(self):
        g = tiny_graph()
        assert g.adjacency_bytes() == 5 * 8 + 7 * 4
