"""SpZip reproduction (Yang, Emer, Sanchez — ISCA 2021).

A pure-Python model of SpZip: programmable, decoupled hardware engines that
traverse, decompress, and compress the sparse data structures of irregular
applications, plus the multicore substrate, execution strategies (Push,
Update Batching, PHI), applications, and the experiment harness that
regenerates every table and figure of the paper's evaluation.

Top-level convenience imports cover the objects most users need; see the
subpackages for the full API:

* ``repro.compression`` -- delta / BPC / BDI / RLE codecs
* ``repro.memory``      -- caches, DRAM, NoC, compressed hierarchy
* ``repro.graph``       -- CSR graphs, generators, preprocessing
* ``repro.dcl``         -- the Dataflow Configuration Language
* ``repro.engine``      -- the SpZip fetcher and compressor
* ``repro.runtime``     -- Push / UB / PHI execution strategies
* ``repro.apps``        -- PR, PRD, CC, RE, DC, BFS, SpMV
* ``repro.sim``         -- machine model, timing, metrics, runner
* ``repro.harness``     -- per-figure/table experiment registry
"""

from repro.config import (
    DEFAULT_SCALE,
    CacheConfig,
    MemoryConfig,
    NocConfig,
    SpZipConfig,
    SystemConfig,
    default_system,
    model_system,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SCALE",
    "CacheConfig",
    "MemoryConfig",
    "NocConfig",
    "SpZipConfig",
    "SystemConfig",
    "default_system",
    "model_system",
    "__version__",
]
