"""Tests for the SpMV substrate."""

import numpy as np
import pytest

from repro.graph import CsrGraph
from repro.sparse import SparseMatrix, make_spmv_input, spmv


def small_matrix():
    # [[0 2 0], [1 0 3], [0 0 4]]
    skeleton = CsrGraph(np.array([0, 1, 3, 4]),
                        np.array([1, 0, 2, 2], dtype=np.uint32))
    return SparseMatrix(skeleton, np.array([2.0, 1.0, 3.0, 4.0]))


class TestSparseMatrix:
    def test_multiply_reference(self):
        m = small_matrix()
        y = m.multiply(np.array([1.0, 2.0, 3.0]))
        assert y.tolist() == [4.0, 10.0, 12.0]

    def test_spmv_alias(self):
        m = small_matrix()
        x = np.array([1.0, 0.0, 1.0])
        assert np.array_equal(spmv(m, x), m.multiply(x))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            small_matrix().multiply(np.ones(5))

    def test_value_count_checked(self):
        skeleton = CsrGraph(np.array([0, 1]), np.array([0],
                                                       dtype=np.uint32))
        with pytest.raises(ValueError):
            SparseMatrix(skeleton, np.array([1.0, 2.0]))

    def test_shape_and_nnz(self):
        m = small_matrix()
        assert m.shape == (3, 3)
        assert m.nnz == 4


class TestSpmvInput:
    def test_nlp_standin_loads(self):
        matrix, x = make_spmv_input(scale=65536)
        assert matrix.shape[0] == x.size
        assert matrix.nnz > 0

    def test_matrix_is_banded(self):
        matrix, _x = make_spmv_input(scale=65536)
        rows = np.repeat(np.arange(matrix.shape[0]),
                         np.diff(matrix.offsets))
        distance = np.abs(rows - matrix.columns.astype(np.int64))
        assert np.percentile(distance, 99) < matrix.shape[0] * 0.1

    def test_deterministic(self):
        a, xa = make_spmv_input(scale=65536)
        b, xb = make_spmv_input(scale=65536)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(xa, xb)
