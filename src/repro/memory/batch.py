"""Offline (batch) replay of fully-associative LRU — exact, vectorized.

The scheme-level traffic model replays millions of scatter accesses per
(app, dataset, scheme) cell through an LLC-sized LRU
(:func:`repro.runtime.traffic._lru_scatter` and friends).  The scalar
``OrderedDict`` loop is exact but interpreter-bound; this module computes
the *same* result with NumPy, using the LRU stack property:

    an access to line ``x`` hits iff the number of **distinct** lines
    referenced since the previous access to ``x`` is at most ``C - 1``
    (capacity ``C``), independent of what hit or missed in between.

That turns replay into three offline subproblems:

1. ``prev[i]`` — position of the previous access to the same line
   (grouped ``argsort``);
2. the per-access hit decision, resolved by a cascade of exact
   shortcuts: a trace whose working set fits (``distinct <= C``) never
   evicts, so every reuse hits; a reuse within ``C`` raw accesses spans
   at most ``C`` distinct lines, so it hits too; first accesses always
   miss.  What survives (long-range reuses in an over-capacity working
   set) is decided by counting each window's first occurrences
   (``#{prev[i] < j < i : prev[j] <= prev[i]}``) directly when few
   remain, or by one sequential pass over the run-collapsed trace when
   many do — the decisions are interpreter-bound either way, and the
   collapsed trace is the smallest exact representation;
3. eviction/writeback/final-state reconstruction from *residency
   segments*: each miss starts a segment, a segment is dirty if any
   access in it wrote, and LRU evicts segments in increasing order of
   their last-access time, so totals and the surviving recency order
   follow from per-segment reductions — no event loop.

The big wins are structural: scatter streams address a few values per
line, so run collapse shrinks the trace several-fold, and the paper's
binned schemes bound each bin's working set below the cache capacity,
which makes the all-fit shortcut decide every access vectorized.

Every function here is bit-identical to its scalar counterpart;
``tests/test_batch_equivalence.py`` enforces that on randomized streams.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Ambiguous-reuse thresholds for the adaptive resolver in
#: :func:`lru_hit_mask`: direct per-window counting is used while the
#: query count and the summed window lengths stay below these bounds.
_DIRECT_MAX_QUERIES = 1024
_DIRECT_MAX_WORK_FACTOR = 16


def previous_occurrence(lines: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """``prev[i]`` = index of the prior access to ``lines[i]`` (else -1).

    Also returns the stable (line, position) sort order, which callers
    reuse for grouped reductions.  When line ids fit, (line, position)
    pairs are packed into one int64 so a single unstable sort replaces
    the much slower stable ``argsort``.
    """
    n = lines.size
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    shift = max(1, int(n - 1).bit_length())
    if int(lines.min()) >= 0 and int(lines.max()) < (1 << (62 - shift)):
        composite = (lines << shift) | np.arange(n, dtype=np.int64)
        composite.sort()
        order = composite & ((1 << shift) - 1)
        sorted_lines = composite >> shift
    else:
        order = np.argsort(lines, kind="stable")
        sorted_lines = lines[order]
    prev_sorted = np.empty(n, dtype=np.int64)
    prev_sorted[0] = -1
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev_sorted[1:] = np.where(same, order[:-1], -1)
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    return prev, order


def _sequential_hit_mask(lines: np.ndarray,
                         capacity: int) -> np.ndarray:
    """Reference LRU walk, used when a trace defeats every shortcut.

    Callers hand it the run-collapsed trace, so even this pass does the
    minimum possible interpreter work for an exact answer.
    """
    cache: "OrderedDict[int, None]" = OrderedDict()
    hits = []
    for line in lines.tolist():
        if line in cache:
            hits.append(True)
            cache.move_to_end(line)
        else:
            hits.append(False)
            if len(cache) >= capacity:
                cache.popitem(last=False)
            cache[line] = None
    return np.array(hits, dtype=bool)


def lru_hit_mask(lines: np.ndarray, capacity: int,
                 prev: Optional[np.ndarray] = None) -> np.ndarray:
    """Exact cold-start fully-associative-LRU hit mask for a trace.

    Adaptive: vectorized shortcuts decide every access when the working
    set fits the cache (the paper's binned schemes guarantee this per
    bin) or when reuse distances are short; long-range reuses in an
    over-capacity working set are counted per window while few, and a
    single sequential pass resolves pathological traces — always
    bit-identical to the scalar model.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    n = lines.size
    if n == 0:
        return np.empty(0, dtype=bool)
    if prev is None:
        prev, _order = previous_occurrence(lines)
    hits = prev >= 0
    # Working set fits: LRU never evicts, so every reuse is a hit.
    if n - int(np.count_nonzero(hits)) <= capacity:
        return hits
    pos = np.arange(n, dtype=np.int64)
    gap = pos - prev
    # Reuse within C raw accesses can span at most C distinct lines.
    ambiguous = hits & (gap > capacity)
    amb = np.flatnonzero(ambiguous)
    if amb.size == 0:
        return hits
    if amb.size <= _DIRECT_MAX_QUERIES and \
            int(gap[amb].sum()) <= _DIRECT_MAX_WORK_FACTOR * n:
        # Distinct lines in (p, i) = windowed first occurrences, i.e.
        # positions j in (p, i) whose own previous access is at or
        # before p — independent of intermediate hit/miss outcomes.
        limit = capacity - 1
        for i in amb.tolist():
            p = int(prev[i])
            window = prev[p + 1:i]
            hits[i] = int(np.count_nonzero(window <= p)) <= limit
        return hits
    return _sequential_hit_mask(lines, capacity)


def _collapse_runs(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(run-representative mask, collapsed index of each access).

    Adjacent repeats of a line are guaranteed hits and leave the LRU
    order unchanged, so the core only needs one access per run; the
    distinct-count in any reuse window is unaffected.
    """
    rep = np.empty(lines.size, dtype=bool)
    if lines.size:
        rep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=rep[1:])
    collapsed_index = np.cumsum(rep) - 1
    return rep, collapsed_index


@dataclass
class LruReplay:
    """Everything :meth:`FastLruCache.access_many` needs, in one pass."""

    hit_mask: np.ndarray       # per input access
    misses: int
    evictions: int
    writebacks: int            # dirty evicted segments (no final flush)
    resident_lines: np.ndarray  # surviving lines, oldest first
    resident_dirty: np.ndarray


def replay_lru(lines: np.ndarray, writes: np.ndarray, capacity: int,
               state_lines: Optional[np.ndarray] = None,
               state_dirty: Optional[np.ndarray] = None) -> LruReplay:
    """Batch-replay ``(line, write)`` accesses through LRU state.

    The pre-existing cache contents enter as a virtual prefix of
    first-access misses (recency order, ``write`` = dirty bit), which
    reconstructs exactly the starting state; prefix stats are then
    subtracted.  Returns per-access hits, stat deltas, and the final
    contents in recency order.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    writes = np.ascontiguousarray(writes, dtype=bool)
    n_prefix = 0 if state_lines is None else int(state_lines.size)
    if n_prefix:
        full_lines = np.concatenate(
            [np.ascontiguousarray(state_lines, dtype=np.int64), lines])
        full_writes = np.concatenate(
            [np.ascontiguousarray(state_dirty, dtype=bool), writes])
    else:
        full_lines, full_writes = lines, writes
    n = full_lines.size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return LruReplay(np.empty(0, dtype=bool), 0, 0, 0,
                         empty, np.empty(0, dtype=bool))

    rep, collapsed_index = _collapse_runs(full_lines)
    c_lines = full_lines[rep]
    # A run is dirty if any access in it wrote.
    c_writes = np.logical_or.reduceat(full_writes, np.flatnonzero(rep))

    prev, order = previous_occurrence(c_lines)
    c_hits = lru_hit_mask(c_lines, capacity, prev=prev)
    hits_full = np.ones(n, dtype=bool)
    hits_full[rep] = c_hits

    misses_all = int(np.count_nonzero(~c_hits))
    final_size = min(misses_all, capacity)
    evictions = misses_all - final_size

    # -- residency segments (in (line, position) sorted order) ------------
    miss_sorted = ~c_hits[order]
    writes_sorted = c_writes[order]
    seg_starts = np.flatnonzero(miss_sorted)
    seg_dirty = np.logical_or.reduceat(writes_sorted, seg_starts)
    # A line's last segment is the one covering its group's last element.
    sorted_lines = c_lines[order]
    group_last = np.empty(c_lines.size, dtype=bool)
    group_last[-1] = True
    np.not_equal(sorted_lines[1:], sorted_lines[:-1],
                 out=group_last[:-1])
    seg_end = np.concatenate([seg_starts[1:], [c_lines.size]]) - 1
    seg_is_final = group_last[seg_end]

    # Final segments survive iff fewer than C distinct other lines are
    # accessed after the line's last access t:
    #   #{ j > t : prev[j] <= t } == #{ prev <= t } - (t + 1).
    t_last = order[seg_end[seg_is_final]]
    prev_sorted_vals = np.sort(prev)
    d_end = (np.searchsorted(prev_sorted_vals, t_last, side="right")
             - (t_last + 1))
    survive_final = d_end <= capacity - 1

    evicted_dirty = int(seg_dirty[~seg_is_final].sum()) \
        + int(seg_dirty[seg_is_final][~survive_final].sum())

    res_order = np.argsort(t_last[survive_final], kind="stable")
    resident_lines = c_lines[t_last[survive_final]][res_order]
    resident_dirty = seg_dirty[seg_is_final][survive_final][res_order]

    return LruReplay(
        hit_mask=hits_full[n_prefix:],
        misses=misses_all - n_prefix,
        evictions=evictions,
        writebacks=evicted_dirty,
        resident_lines=resident_lines,
        resident_dirty=resident_dirty,
    )


def lru_scatter_misses(lines: np.ndarray, capacity: int) -> int:
    """Miss count of a read-modify-write scatter replay (cold LRU).

    For the RMW streams the traffic model replays, every inserted line
    is dirty, so lifetime writebacks (evictions + final flush) equal the
    miss count — callers needing writebacks reuse this number.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    if lines.size == 0:
        return 0
    rep, _ = _collapse_runs(lines)
    c_lines = lines[rep]
    hits = lru_hit_mask(c_lines, capacity)
    return int(np.count_nonzero(~hits))
