"""Tests for DCL program construction, validation, and parsing."""

import pytest

from repro.compression import DeltaCodec
from repro.config import SpZipConfig
from repro.dcl import (
    DclSyntaxError,
    Program,
    ProgramError,
    parse_dcl,
)
from repro.dcl.program import COMPRESSOR_KINDS, FETCHER_KINDS


def simple_program():
    p = Program()
    p.queue("in", elem_bytes=8)
    p.queue("out", elem_bytes=4)
    p.range_fetch("fetch", "in", ["out"], base=0x1000)
    return p


class TestBuilder:
    def test_duplicate_queue_rejected(self):
        p = Program()
        p.queue("q")
        with pytest.raises(ProgramError):
            p.queue("q")

    def test_duplicate_operator_rejected(self):
        p = simple_program()
        with pytest.raises(ProgramError):
            p.range_fetch("fetch", "in", ["out"], base=0)

    def test_undeclared_queue_rejected(self):
        p = Program()
        p.queue("in")
        with pytest.raises(ProgramError):
            p.range_fetch("f", "in", ["nope"], base=0)

    def test_input_output_queue_discovery(self):
        p = Program()
        p.queue("a", 8)
        p.queue("b", 8)
        p.queue("c", 4)
        p.range_fetch("f1", "a", ["b"], base=0)
        p.range_fetch("f2", "b", ["c"], base=0)
        assert p.input_queues() == ["a"]
        assert p.output_queues() == ["c"]


class TestValidation:
    def test_simple_program_validates(self):
        simple_program().validate(SpZipConfig())

    def test_queue_limit(self):
        p = Program()
        for i in range(17):
            p.queue(f"q{i}")
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig(max_queues=16))

    def test_context_limit(self):
        p = Program()
        p.queue("in", 8)
        for i in range(5):
            p.queue(f"o{i}")
            name = "in" if i == 0 else f"o{i-1}"
            p.range_fetch(f"f{i}", name, [f"o{i}"], base=0)
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig(max_contexts=4))

    def test_double_consumer_rejected(self):
        p = Program()
        p.queue("in", 8)
        p.queue("o1")
        p.queue("o2")
        p.range_fetch("f1", "in", ["o1"], base=0)
        p.range_fetch("f2", "in", ["o2"], base=0)
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig())

    def test_double_producer_rejected(self):
        p = Program()
        p.queue("a", 8)
        p.queue("b", 8)
        p.queue("shared")
        p.range_fetch("f1", "a", ["shared"], base=0)
        p.range_fetch("f2", "b", ["shared"], base=0)
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig())

    def test_cycle_rejected(self):
        p = Program()
        p.queue("a")
        p.queue("b")
        p.range_fetch("f1", "a", ["b"], base=0)
        p.range_fetch("f2", "b", ["a"], base=0)
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig())

    def test_engine_kind_restriction(self):
        p = Program()
        p.queue("in", 4)
        p.queue("out", 1)
        p.compress("c", "in", ["out"], codec=DeltaCodec())
        p.validate(SpZipConfig(), COMPRESSOR_KINDS)
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig(), FETCHER_KINDS)

    def test_scratchpad_budget(self):
        p = Program()
        p.queue("a", 4, capacity_bytes=4096)
        with pytest.raises(ProgramError):
            p.validate(SpZipConfig(scratchpad_bytes=2048))


class TestInstantiation:
    def test_auto_capacity_shares_scratchpad(self):
        p = simple_program()
        queues, _ops = p.instantiate(SpZipConfig(scratchpad_bytes=2048),
                                     resolve_addr=int)
        assert queues["in"].capacity_bytes == 1024
        assert queues["out"].capacity_bytes == 1024

    def test_explicit_capacity_respected(self):
        p = Program()
        p.queue("big", 4, capacity_bytes=1536)
        p.queue("small", 4)
        p.range_fetch("f", "big", ["small"], base=0)
        queues, _ = p.instantiate(SpZipConfig(scratchpad_bytes=2048),
                                  resolve_addr=int)
        assert queues["big"].capacity_bytes == 1536
        assert queues["small"].capacity_bytes == 512

    def test_region_name_resolution(self):
        p = simple_program()
        p.operators[0].params["base"] = "myregion"
        resolved = {}

        def resolve(base):
            resolved["base"] = base
            return 0x7000

        _queues, ops = p.instantiate(SpZipConfig(), resolve)
        assert resolved["base"] == "myregion"
        assert ops[0].base_addr == 0x7000


class TestParser:
    def test_parse_fig3_pipeline(self):
        text = """
        # Fig 3: compressed CSR traversal
        queue input elem=8
        queue offsetsQ elem=8
        queue crows elem=1
        queue rows elem=4
        range fetch_offsets input -> offsetsQ base=offsets elem=8 nomarkers
        range fetch_crows offsetsQ -> crows base=payload elem=1 boundaries
        decompress dec crows -> rows codec=delta
        """
        p = parse_dcl(text)
        p.validate(SpZipConfig(), FETCHER_KINDS)
        assert p.input_queues() == ["input"]
        assert p.output_queues() == ["rows"]
        assert p.operators[1].params["use_end_as_next_start"] is True
        assert p.operators[0].params["emit_range_markers"] is False

    def test_parse_compressor_pipeline(self):
        text = """
        queue bin_input elem=8
        queue chunksQ elem=8
        queue compressedQ elem=1
        memqueue stage bin_input -> chunksQ queues=64 base=staging qbytes=512
        compress comp chunksQ -> compressedQ codec=delta elem=8 sort
        binappend append compressedQ queues=64 base=bins qbytes=65536
        """
        p = parse_dcl(text)
        p.validate(SpZipConfig(), COMPRESSOR_KINDS)
        assert p.operators[1].params["sort_chunks"] is True

    def test_prefetch_only_dash(self):
        text = """
        queue idx elem=4
        indirect pf idx -> - base=0x4000 elem=8
        """
        p = parse_dcl(text)
        assert p.operators[0].out_queues == []
        assert p.operators[0].params["base"] == 0x4000

    @pytest.mark.parametrize("bad,msg", [
        ("quux foo", "unknown statement"),
        ("queue", "exactly one name"),
        ("range f in -> out", "base"),
        ("range f in => out base=0", "malformed option"),
        ("decompress d in -> out codec=zstd", "unknown codec"),
        ("queue q elem=abc", "integer"),
        ("range f in -> out base=0 wat", "unknown flag"),
    ])
    def test_syntax_errors(self, bad, msg):
        prelude = "queue in elem=8\nqueue out elem=4\n"
        with pytest.raises(DclSyntaxError) as err:
            parse_dcl(prelude + bad)
        assert msg in str(err.value)

    def test_comments_and_blanks_ignored(self):
        p = parse_dcl("\n# nothing\n   \nqueue q elem=4 # trailing\n")
        assert "q" in p.queues
