"""Compute backends: where the server's ``execute_group`` dispatches run.

One dispatch is the jobs layer's group unit — one profile job plus the
price jobs batched onto it (:mod:`repro.serve.batching` builds those
groups across requests).  The backend decides what executes them:

``thread``   a ``ThreadPoolExecutor`` in this process.  Dispatches for
             one profile serialize on a per-profile lock so the
             process-wide stage-pricer bundle is never built twice; distinct
             profiles still contend on the GIL, so this backend scales
             with I/O overlap, not cores.
``process``  a ``ProcessPoolExecutor`` over the PR-1 jobs pool
             machinery: each worker process memoizes its own stage
             pricer per (scale, system, store config) — all reading
             through one content-addressed artifact store — groups
             shard across workers, and the
             GIL stops being the ceiling.  Tracing stays coherent via
             the PR-4 part-file protocol
             (:class:`~repro.jobs.executor.PoolTraceSession`): workers
             flush spans to per-pid part files which are adopted —
             re-parented under their dispatch envelopes — when the
             backend closes.

Both backends degrade instead of failing: a process pool that cannot
be created or breaks mid-flight (sandboxed ``/dev/shm``, OOM-killed
worker) falls back to in-process execution and counts the fallback.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.jobs.cache import StoreConfig
from repro.jobs.executor import (
    JobOutcome,
    PoolTraceSession,
    execute_group,
)
from repro.jobs.model import JobSpec

#: Backend names the CLI accepts.
BACKENDS = ("thread", "process")


class ComputeBackend:
    """Interface: run one (profile, prices) group somewhere."""

    name = "abstract"

    async def run_group(self, scale: int, system: Optional[SystemConfig],
                        profile: JobSpec, prices: List[JobSpec],
                        store: Optional[StoreConfig] = None
                        ) -> List[JobOutcome]:
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class ThreadBackend(ComputeBackend):
    """In-process execution on a thread pool (the PR-6 behaviour)."""

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-compute")
        self._profile_locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self.dispatches = 0

    def _profile_lock(self, job_id: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._profile_locks.get(job_id)
            if lock is None:
                lock = self._profile_locks[job_id] = threading.Lock()
            return lock

    def _run_locked(self, scale: int, system: Optional[SystemConfig],
                    profile: JobSpec, prices: List[JobSpec],
                    store: Optional[StoreConfig]) -> List[JobOutcome]:
        # Same-profile dispatches serialize so the in-process pricer's
        # profile bundle is built exactly once per profile.
        with self._profile_lock(profile.job_id):
            return execute_group(scale, system, profile, prices,
                                 store)

    async def run_group(self, scale: int, system: Optional[SystemConfig],
                        profile: JobSpec, prices: List[JobSpec],
                        store: Optional[StoreConfig] = None
                        ) -> List[JobOutcome]:
        self.dispatches += 1
        ctx = contextvars.copy_context()
        return await asyncio.get_running_loop().run_in_executor(
            self._pool,
            lambda: ctx.run(self._run_locked, scale, system, profile,
                            prices, store))

    def stats(self) -> Dict[str, object]:
        return {"name": self.name, "workers": self.workers,
                "dispatches": self.dispatches}

    def close(self) -> None:
        self._pool.shutdown(wait=False)


class ProcessBackend(ComputeBackend):
    """Sharded execution across OS worker processes."""

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.dispatches = 0
        self.fallbacks = 0
        # The trace session must open before the first worker spawns,
        # so workers inherit REPRO_TRACE_DIR and flush part files.
        self._trace = PoolTraceSession()
        self._fallback_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-fallback")
        self._pool: Optional[ProcessPoolExecutor]
        try:
            self._pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError):  # e.g. sandboxed /dev/shm
            self._pool = None
        if self._pool is not None:
            self._warm()

    def _warm(self) -> None:
        # Fork every worker now, while this process is quiet.  The
        # executor otherwise spawns workers lazily at first submit —
        # mid-burst, with server threads live and their locks
        # potentially held across the fork, which deadlocks the child.
        # Each warm task outlives the submit loop so no worker reports
        # idle early, forcing one fresh process per submit.  This also
        # probes pool health: a worker that cannot start demotes the
        # backend to in-process fallback instead of hanging requests.
        try:
            futures = [self._pool.submit(time.sleep, 0.1)
                       for _ in range(self.workers)]
            for future in futures:
                future.result(timeout=30)
        except Exception:
            self._pool.shutdown(wait=False)
            self._pool = None

    async def _run_fallback(self, scale: int,
                            system: Optional[SystemConfig],
                            profile: JobSpec, prices: List[JobSpec],
                            store: Optional[StoreConfig] = None
                            ) -> List[JobOutcome]:
        self.fallbacks += 1
        ctx = contextvars.copy_context()
        return await asyncio.get_running_loop().run_in_executor(
            self._fallback_pool,
            lambda: ctx.run(execute_group, scale, system, profile,
                            prices, store))

    async def run_group(self, scale: int, system: Optional[SystemConfig],
                        profile: JobSpec, prices: List[JobSpec],
                        store: Optional[StoreConfig] = None
                        ) -> List[JobOutcome]:
        self.dispatches += 1
        if self._pool is None:
            return await self._run_fallback(scale, system, profile,
                                            prices, store)
        start = time.monotonic()
        try:
            future = self._pool.submit(execute_group, scale, system,
                                       profile, prices, store)
            outcomes = await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            raise
        except Exception:
            # Broken pool, unpicklable payload, dead worker: serve the
            # group in-process rather than failing the whole batch.
            return await self._run_fallback(scale, system, profile,
                                            prices, store)
        self._trace.record_dispatch(profile, start, 1)
        return outcomes

    def stats(self) -> Dict[str, object]:
        return {"name": self.name, "workers": self.workers,
                "dispatches": self.dispatches,
                "fallbacks": self.fallbacks,
                "pool": "up" if self._pool is not None else "fallback"}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self._fallback_pool.shutdown(wait=False)
        self._trace.finish()
        # Drop this process's shared-graph mappings along with the pool.
        from repro.graph.shared import release_graphs
        release_graphs()


def make_backend(name: str, workers: int) -> ComputeBackend:
    """Build the backend the CLI asked for (``thread`` | ``process``)."""
    if name == "thread":
        return ThreadBackend(workers)
    if name == "process":
        return ProcessBackend(workers)
    raise ValueError(f"unknown backend {name!r}; "
                     f"valid: {', '.join(BACKENDS)}")
