"""Tests for address translation (TLB, page table, translating port)."""

import numpy as np
import pytest

from repro.config import SpZipConfig
from repro.dcl import pack_range
from repro.engine import DriveRequest, Fetcher, INPUT_QUEUE, ROWS_QUEUE, csr_traversal, \
    drive
from repro.graph import CsrGraph
from repro.memory import AddressSpace, PageFault, PageTable, Tlb, \
    TranslatingPort
from repro.memory.tlb import PAGE_BYTES


class TestTlb:
    def test_first_touch_misses_then_hits(self):
        tlb = Tlb(entries=16, ways=4)
        assert tlb.lookup(5) is False
        assert tlb.lookup(5) is True
        assert tlb.miss_rate == 0.5

    def test_lru_within_set(self):
        tlb = Tlb(entries=4, ways=4)  # one set
        for vpage in range(4):
            tlb.lookup(vpage * tlb.num_sets)
        tlb.lookup(0)                      # refresh 0
        tlb.lookup(4 * tlb.num_sets)       # evict LRU (page 1*sets)
        assert tlb.lookup(0) is True
        assert tlb.lookup(1 * tlb.num_sets) is False

    def test_flush(self):
        tlb = Tlb(entries=8, ways=2)
        tlb.lookup(3)
        tlb.flush()
        assert tlb.lookup(3) is False

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=10, ways=4)


class TestPageTable:
    def test_map_and_translate(self):
        table = PageTable()
        table.map_range(0x10000, 100)
        assert table.is_present(0x10000 // PAGE_BYTES)
        assert table.translate(0x10000 // PAGE_BYTES) == \
            0x10000 // PAGE_BYTES

    def test_fault_on_absent(self):
        table = PageTable()
        with pytest.raises(PageFault):
            table.translate(42)
        assert table.faults == 1

    def test_populate_on_fault_maps_for_retry(self):
        table = PageTable(populate_on_fault=True)
        with pytest.raises(PageFault):
            table.translate(7)
        assert table.translate(7) == 7  # OS handled it; retry succeeds

    def test_unmap(self):
        table = PageTable()
        table.map_range(0, PAGE_BYTES)
        table.unmap_page(0)
        assert not table.is_present(0)


class TestTranslatingPort:
    def base_port(self):
        calls = []

        def port(addr, nbytes, write):
            calls.append((addr, nbytes, write))
            return 10

        return port, calls

    def test_walk_latency_added_on_miss(self):
        port, _calls = self.base_port()
        table = PageTable()
        table.map_range(0, 1 << 20)
        translating = TranslatingPort(port, Tlb(walk_latency=35),
                                      table)
        first = translating(0, 8, False)
        second = translating(0, 8, False)
        assert first == 45  # walk + access
        assert second == 10  # TLB hit

    def test_fault_raises_without_handler(self):
        port, _ = self.base_port()
        translating = TranslatingPort(port, page_table=PageTable())
        with pytest.raises(PageFault):
            translating(0x5000, 8, False)

    def test_fault_handler_maps_page(self):
        port, calls = self.base_port()
        handled = []

        def on_fault(vpage):
            handled.append(vpage)
            return True

        translating = TranslatingPort(port, page_table=PageTable(),
                                      on_fault=on_fault)
        translating(0x5000, 8, False)
        assert handled == [0x5000 // PAGE_BYTES]
        assert len(calls) == 1

    def test_multi_page_access_translates_each_page(self):
        port, _ = self.base_port()
        table = PageTable()
        table.map_range(0, 3 * PAGE_BYTES)
        translating = TranslatingPort(port, Tlb(walk_latency=20), table)
        latency = translating(PAGE_BYTES - 4, 8, False)  # spans 2 pages
        assert latency == 2 * 20 + 10


class TestEngineWithTranslation:
    def test_fetcher_traverses_through_tlb(self):
        """A fetcher using a translating port still works, paying
        page-walk latency once per page (Sec III-D)."""
        graph = CsrGraph(np.array([0, 2, 4, 5, 7]),
                         np.array([1, 2, 0, 2, 3, 1, 2],
                                  dtype=np.uint32))
        space = AddressSpace()
        space.alloc_array("offsets", graph.offsets, "adjacency")
        space.alloc_array("rows", graph.neighbors, "adjacency")
        table = PageTable()
        for name in ("offsets", "rows"):
            region = space.region(name)
            table.map_range(region.base, region.nbytes)
        tlb = Tlb()
        port = TranslatingPort(lambda a, n, w: 15, tlb, table)
        fetcher = Fetcher(SpZipConfig(), space, mem_port=port)
        fetcher.load_program(csr_traversal(row_elem_bytes=4))
        result = drive(fetcher, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 5)]},
                                             consume=[ROWS_QUEUE]))
        assert result.chunks(ROWS_QUEUE) == [[1, 2], [0, 2], [3], [1, 2]]
        assert tlb.misses >= 1
        assert tlb.hits > tlb.misses  # translations are reused

    def test_fetcher_fault_interrupts_traversal(self):
        """Touching an unmapped page stops the engine with a fault the
        'OS' can observe — the paper's interrupt-and-quiesce protocol."""
        graph = CsrGraph(np.array([0, 2, 4, 5, 7]),
                         np.array([1, 2, 0, 2, 3, 1, 2],
                                  dtype=np.uint32))
        space = AddressSpace()
        space.alloc_array("offsets", graph.offsets, "adjacency")
        space.alloc_array("rows", graph.neighbors, "adjacency")
        table = PageTable()  # nothing mapped
        port = TranslatingPort(lambda a, n, w: 15, Tlb(), table)
        fetcher = Fetcher(SpZipConfig(), space, mem_port=port)
        fetcher.load_program(csr_traversal(row_elem_bytes=4))
        fetcher.enqueue(INPUT_QUEUE, pack_range(0, 5))
        with pytest.raises(PageFault):
            for _ in range(100):
                fetcher.tick()
        assert table.faults >= 1
