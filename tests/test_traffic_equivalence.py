"""Array-native stream generation vs the scalar oracles, bit for bit.

The hot profiling path (:mod:`repro.runtime.traffic`) emits every
per-strategy access stream from raw CSR arrays in vectorized passes; the
``*_scalar`` oracles in :mod:`repro.runtime.traffic_array` walk the same
definitions vertex by vertex.  These tests hold the two sides exactly
equal — generator by generator, and end to end through full iteration
profiles — across hostile shapes: tiny LLCs, ``id_scale=1``, empty and
sparse frontiers, self-loops, duplicate edges, and isolated vertices.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import bfs as bfs_app, pagerank
from repro.config import SystemConfig
from repro.graph import community_graph
from repro.graph.csr import CsrGraph
from repro.runtime import ModelConfig, profile_iteration
from repro.runtime import traffic_array as ta
from repro.runtime.traffic import (
    array_compressed_bytes,
    chunked_ids_values_compressed,
    gather_rows,
    rows_compressed_bytes_from,
)
from repro.runtime.workload import Iteration, Workload


def model_cfg(llc_kb=16, id_scale=4096, sort=True):
    system = SystemConfig().scaled(4096)
    system = replace(system, llc=replace(system.llc,
                                         size_bytes=llc_kb * 1024))
    return ModelConfig(system=system, id_scale=id_scale,
                       sort_updates=sort)


def hostile_graph(seed=0, num_vertices=96):
    """Self-loops, duplicate edges, isolated vertices — all kept."""
    rng = np.random.default_rng(seed)
    num_edges = 6 * num_vertices
    src = rng.integers(0, num_vertices // 2, num_edges)  # upper half
    dst = rng.integers(0, num_vertices, num_edges)       # stays isolated
    src[::17] = dst[::17]       # plant self-loops
    src[1::13] = src[::13][:src[1::13].size]  # plant duplicate edges
    dst[1::13] = dst[::13][:dst[1::13].size]
    return CsrGraph.from_edges(num_vertices, src, dst, dedup=False,
                               drop_self_loops=False)


GRAPHS = [
    pytest.param(lambda: community_graph(120, 800, seed_stream="eq-a"),
                 id="community"),
    pytest.param(lambda: hostile_graph(1), id="hostile"),
]

SOURCE_SETS = [
    pytest.param(lambda g: np.arange(g.num_vertices), id="all-active"),
    pytest.param(lambda g: np.empty(0, dtype=np.int64), id="empty"),
    pytest.param(lambda g: np.arange(0, g.num_vertices, 7), id="sparse"),
    pytest.param(lambda g: np.array([0, 3, g.num_vertices - 1]),
                 id="tiny"),
]


@pytest.mark.parametrize("make_graph", GRAPHS)
@pytest.mark.parametrize("make_sources", SOURCE_SETS)
class TestGeneratorEquivalence:
    """Each array-native generator against its scalar oracle."""

    def test_gather_row_stream(self, make_graph, make_sources):
        g = make_graph()
        sources = make_sources(g)
        fast = ta.gather_row_stream(g.offsets, g.neighbors,
                                    g.out_degrees(), sources,
                                    g.num_vertices)
        slow = ta.gather_row_stream_scalar(g.offsets, g.neighbors,
                                           g.out_degrees(), sources,
                                           g.num_vertices)
        np.testing.assert_array_equal(fast, slow)

    def test_push_scatter_lines(self, make_graph, make_sources):
        g = make_graph()
        dsts = gather_rows(g, make_sources(g))
        for dvb in (4, 8, 64, 100):
            np.testing.assert_array_equal(
                ta.push_scatter_lines(dsts, dvb),
                ta.push_scatter_lines_scalar(dsts, dvb))

    def test_ub_bin_stream(self, make_graph, make_sources):
        g = make_graph()
        dsts = gather_rows(g, make_sources(g))
        vals = (dsts.astype(np.uint64) * 3).astype(np.uint32)
        for vpb in (1, 7, 64, 10_000):
            for v in (vals, np.empty(0, dtype=np.uint32)):
                f_ids, f_vals, f_bins = ta.ub_bin_stream(dsts, v, vpb)
                s_ids, s_vals, s_bins = ta.ub_bin_stream_scalar(
                    dsts, v, vpb)
                np.testing.assert_array_equal(f_ids, s_ids)
                np.testing.assert_array_equal(f_vals, s_vals)
                assert f_bins == s_bins

    def test_pull_gather_lines(self, make_graph, make_sources):
        g = make_graph()
        neighbors = gather_rows(g, make_sources(g))
        for svb in (4, 8, 128):
            np.testing.assert_array_equal(
                ta.pull_gather_lines(neighbors, svb),
                ta.pull_gather_lines_scalar(neighbors, svb))

    def test_row_line_bytes(self, make_graph, make_sources):
        g = make_graph()
        sources = make_sources(g)
        for eb in (4, 8):
            assert ta.row_line_bytes(g.offsets, g.num_vertices,
                                     g.num_edges, sources, eb) == \
                ta.row_line_bytes_scalar(g.offsets, g.num_vertices,
                                         g.num_edges, sources, eb)

    def test_scattered_line_bytes(self, make_graph, make_sources):
        g = make_graph()
        sources = make_sources(g)
        for eb in (4, 8):
            assert ta.scattered_line_bytes(sources, eb) == \
                ta.scattered_line_bytes_scalar(sources, eb)


class TestCompressedSizeOracles:
    """Scalar codec size mirrors against the vectorized model sizers."""

    @pytest.mark.parametrize("id_scale", [1, 13, 4096])
    def test_rows_compressed(self, id_scale):
        g = hostile_graph(3)
        sources = np.arange(0, g.num_vertices, 3)
        ids = gather_rows(g, sources)
        degrees = g.out_degrees()[sources]
        assert rows_compressed_bytes_from(ids, degrees, id_scale) == \
            ta.rows_compressed_bytes_scalar(ids, degrees, id_scale)

    @pytest.mark.parametrize("id_scale", [1, 4096])
    @pytest.mark.parametrize("sort", [False, True])
    @pytest.mark.parametrize("n", [1, 5, 31, 32, 33, 257])
    def test_chunked_ids_values(self, id_scale, sort, n):
        rng = np.random.default_rng(n)
        ids = rng.integers(0, 3000, n, dtype=np.uint64).astype(np.uint32)
        for vals in (rng.integers(0, 2 ** 32, n, dtype=np.uint64)
                     .astype(np.uint32),
                     rng.standard_normal(n),
                     np.empty(0, dtype=np.uint32)):
            assert chunked_ids_values_compressed(
                ids, vals, id_scale, sort) == \
                ta.chunked_ids_values_compressed_scalar(
                    ids, vals, id_scale, sort)

    def test_array_compressed(self):
        rng = np.random.default_rng(11)
        for values in (np.empty(0, dtype=np.uint32),
                       np.ones(100, dtype=np.uint32),
                       rng.integers(0, 2 ** 63, 77, dtype=np.uint64),
                       rng.standard_normal(65),
                       np.full(40, -1.5e300)):
            assert array_compressed_bytes(values) == \
                ta.array_compressed_bytes_scalar(values)

    def test_expand_id_scalar_matches_vectorized(self):
        from repro.graph.idspace import expand_ids
        ids = np.arange(0, 5000, 3, dtype=np.uint32)
        for scale in (1, 2, 3, 4096):
            fast = expand_ids(ids, scale)
            slow = [ta.expand_id_scalar(int(v), scale)
                    for v in ids.tolist()]
            assert fast.tolist() == slow


class TestReplayOracles:
    def test_lru_oracle_is_traffic_reference(self):
        # The moved oracle must stay the one traffic re-exports.
        from repro.runtime.traffic import _lru_scatter, _phi_coalesce
        assert _lru_scatter is ta.lru_scatter_oracle
        assert _phi_coalesce is ta.phi_coalesce_oracle


def hostile_workload(app_like="pr"):
    g = hostile_graph(5)
    if app_like == "pr":
        return pagerank.build_workload(g)
    return bfs_app.build_workload(g)


CONFIGS = [
    pytest.param(model_cfg(), id="default"),
    pytest.param(model_cfg(llc_kb=1), id="tiny-llc"),
    pytest.param(model_cfg(id_scale=1), id="id-scale-1"),
    pytest.param(model_cfg(sort=False), id="unsorted"),
]


@pytest.mark.parametrize("cfg", CONFIGS)
@pytest.mark.parametrize("app_like", ["pr", "bfs"])
class TestFullProfileEquivalence:
    """End to end: the vectorized profiler equals the scalar profiler."""

    def test_profiles_bit_identical(self, cfg, app_like):
        workload = hostile_workload(app_like)
        for iteration in workload.iterations[:4]:
            fast = profile_iteration(workload, iteration, cfg)
            slow = ta.profile_iteration_scalar(workload, iteration, cfg)
            assert fast == slow  # dataclass equality, field by field

    def test_community_graph_profiles(self, cfg, app_like):
        g = community_graph(140, 900, seed_stream=f"eq-{app_like}")
        app = pagerank if app_like == "pr" else bfs_app
        workload = app.build_workload(g)
        for iteration in workload.iterations[:3]:
            assert profile_iteration(workload, iteration, cfg) == \
                ta.profile_iteration_scalar(workload, iteration, cfg)
