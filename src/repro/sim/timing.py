"""Bottleneck timing model (DESIGN.md Sec 4).

The paper's own analysis motivates a roofline-style model: SpZip schemes
and PHI "saturate memory bandwidth", while software "Push and UB often do
not saturate memory bandwidth, as traversals bottleneck cores" (Sec V-A),
and Push additionally serializes on atomic read-modify-writes to shared
destination data.  A phase's runtime is the slower of:

* the cores: instruction work plus exposed miss stalls, divided across
  the 16 cores, and
* the memory system: off-chip bytes divided by the achievable bandwidth,
  de-rated when traffic is dominated by scattered (row-miss) accesses.

Per-scheme cost constants live in
:data:`repro.schemes.costs.SCHEME_COSTS`, keyed by scheme spec; this
module holds only the generic machinery (cost dataclass, work
aggregate, bandwidth derate, and the bottleneck combiner).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig

#: Effective-bandwidth multiplier when traffic is fully scattered
#: (row-buffer misses; mirrors repro.memory.dram._ROW_MISS_DERATE).
RANDOM_BW_DERATE = 0.55

#: Loaded DRAM round-trip seen by a stalled core (cycles).
MISS_LATENCY = 200


@dataclass(frozen=True)
class SchemeCosts:
    """Per-scheme core-side cost constants (cycles, per event)."""

    #: plain instruction work per edge processed (traversal + update).
    cycles_per_edge: float
    #: instruction work per active vertex (loop/frontier overhead).
    cycles_per_vertex: float
    #: exposed stall cycles per off-chip destination miss (after MLP).
    stall_per_miss: float
    #: extra per-update work during the accumulation phase (UB/PHI).
    cycles_per_update: float = 0.0
    #: achieved fraction of peak bandwidth on *scattered* traffic.
    #: Demand misses from stalled cores arrive a few at a time (row-buffer
    #: thrashing); decoupled engines issue deep request streams the
    #: FR-FCFS scheduler can reorder for row hits and bank parallelism.
    random_derate: float = RANDOM_BW_DERATE


@dataclass
class PhaseWork:
    """Aggregated work of one simulated phase (all cores together)."""

    edges: float = 0.0
    vertices: float = 0.0
    updates: float = 0.0
    dest_misses: float = 0.0
    seq_bytes: float = 0.0
    rand_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.seq_bytes + self.rand_bytes

    def add(self, other: "PhaseWork") -> None:
        self.edges += other.edges
        self.vertices += other.vertices
        self.updates += other.updates
        self.dest_misses += other.dest_misses
        self.seq_bytes += other.seq_bytes
        self.rand_bytes += other.rand_bytes


def effective_bytes_per_cycle(system: SystemConfig, seq_bytes: float,
                              rand_bytes: float,
                              random_derate: float = RANDOM_BW_DERATE
                              ) -> float:
    """Peak bandwidth de-rated by the scattered-traffic fraction."""
    total = seq_bytes + rand_bytes
    if total <= 0:
        return system.bytes_per_cycle
    seq_fraction = seq_bytes / total
    derate = seq_fraction + (1.0 - seq_fraction) * random_derate
    return system.bytes_per_cycle * derate


def phase_cycles(work: PhaseWork, costs: SchemeCosts,
                 system: SystemConfig):
    """(total, compute, memory) cycles for one phase."""
    compute = (work.edges * costs.cycles_per_edge
               + work.vertices * costs.cycles_per_vertex
               + work.updates * costs.cycles_per_update
               + work.dest_misses * costs.stall_per_miss) \
        / system.num_cores
    bw = effective_bytes_per_cycle(system, work.seq_bytes, work.rand_bytes,
                                   costs.random_derate)
    memory = work.total_bytes / bw
    return max(compute, memory), compute, memory
