"""Nibble codes — Ligra+'s other byte-family code (Shun et al., DCC'15).

Like the byte code used by :class:`~repro.compression.delta.DeltaCodec`
but at 4-bit granularity: each nibble carries 3 data bits plus a
continuation bit, so tiny deltas (0-7) cost half a byte.  On strongly
clustered neighbour sets (GOrder/DFS-ordered graphs) this beats byte
codes; on anything else the finer granularity is overhead — which is why
systems keep both and pick per structure.

Stream layout mirrors the delta codec: zigzagged first element, then
zigzagged wrapped deltas, each as a continuation-coded nibble sequence.
An odd nibble count is padded to a whole byte with the terminator nibble
``1000`` (continuation set, no successor) — unambiguous, because no
value's encoding can end the stream mid-continuation.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import Codec, as_unsigned_bits, from_unsigned_bits
from repro.compression.delta import (
    _U64_MASK,
    _unzigzag_int,
    _wrapped_delta,
    _zigzag_int,
)
from repro.utils.bitstream import BitReader, BitWriter


def _write_nibbles(writer: BitWriter, value: int) -> None:
    """Continuation-coded nibbles, most-significant group first."""
    groups = [value & 0x7]
    value >>= 3
    while value:
        groups.append(value & 0x7)
        value >>= 3
    for i, group in enumerate(reversed(groups)):
        more = 1 if i < len(groups) - 1 else 0
        writer.write_bits((more << 3) | group, 4)


def _read_nibbles(reader: BitReader) -> int:
    value = 0
    while True:
        nibble = reader.read_bits(4)
        value = (value << 3) | (nibble & 0x7)
        if not nibble & 0x8:
            return value


def nibble_size_bits(value: int) -> int:
    """Encoded size of one non-negative value, in bits."""
    groups = 1
    value >>= 3
    while value:
        groups += 1
        value >>= 3
    return 4 * groups


class NibbleCodec(Codec):
    """Delta + continuation-coded nibbles over element bit patterns."""

    name = "nibble"

    def encode(self, values: np.ndarray) -> bytes:
        bits = as_unsigned_bits(values).astype(np.uint64)
        if bits.size == 0:
            return b""
        writer = BitWriter()
        prev = int(bits[0])
        _write_nibbles(writer, _zigzag_int(prev))
        for current in bits[1:].tolist():
            _write_nibbles(writer,
                           _zigzag_int(_wrapped_delta(current, prev)))
            prev = current
        if len(writer) % 8:
            writer.write_bits(0b1000, 4)  # terminator pad
        return writer.getvalue()

    def decode(self, data: bytes, count: int, dtype: np.dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        if count == 0:
            return np.empty(0, dtype=dtype)
        reader = BitReader(data)
        out = np.empty(count, dtype=np.uint64)
        prev = _unzigzag_int(_read_nibbles(reader))
        out[0] = prev
        for i in range(1, count):
            prev = (prev + _unzigzag_int(_read_nibbles(reader))) \
                & _U64_MASK
            out[i] = prev
        return from_unsigned_bits(out.astype(np.dtype(f"u{dtype.itemsize}")),
                                  dtype)

    def decode_stream(self, data: bytes, dtype: np.dtype) -> np.ndarray:
        """Decode until the stream ends (or its terminator pad)."""
        dtype = np.dtype(dtype)
        reader = BitReader(data)
        values = []
        prev = 0
        first = True
        while reader.bits_remaining >= 4:
            if reader.bits_remaining == 4 and \
                    reader.peek_bits(4) == 0b1000:
                break  # terminator pad
            raw = _read_nibbles(reader)
            if first:
                prev = _unzigzag_int(raw)
                first = False
            else:
                prev = (prev + _unzigzag_int(raw)) & _U64_MASK
            values.append(prev)
        out = np.array(values, dtype=np.uint64)
        return from_unsigned_bits(out.astype(np.dtype(f"u{dtype.itemsize}")),
                                  dtype)

    def encoded_size(self, values: np.ndarray) -> int:
        from repro.compression.sizes import nibble_group_sizes
        bits = as_unsigned_bits(values).astype(np.uint64)
        if bits.size == 0:
            return 0
        return int(nibble_group_sizes(bits, np.zeros(1, dtype=np.int64))[0])
