"""The minimal HTTP/1.1 layer (repro.serve.http)."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADERS,
    BadRequest,
    HttpRequest,
    json_body,
    parse_response,
    read_request,
    render_response,
)


def parse(data: bytes):
    """Run read_request over an in-memory stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


def request_bytes(method="POST", path="/price", headers=(),
                  body=b'{"app": "dc"}'):
    lines = [f"{method} {path} HTTP/1.1", "Host: t",
             f"Content-Length: {len(body)}", *headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class TestReadRequest:
    def test_roundtrip_post(self):
        request = parse(request_bytes())
        assert request.method == "POST"
        assert request.path == "/price"
        assert request.headers["host"] == "t"
        assert request.json() == {"app": "dc"}
        assert request.keep_alive  # HTTP/1.1 default

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_query_string_is_stripped_from_path(self):
        request = parse(request_bytes(method="GET", path="/stats?x=1",
                                      body=b""))
        assert request.path == "/stats"

    def test_connection_close_disables_keep_alive(self):
        request = parse(request_bytes(headers=["Connection: close"]))
        assert not request.keep_alive

    @pytest.mark.parametrize("version,headers,expected", [
        ("HTTP/1.1", [], True),
        ("HTTP/1.1", ["Connection: close"], False),
        ("HTTP/1.1", ["Connection: keep-alive"], True),
        ("HTTP/1.0", [], False),  # 1.0 defaults to close
        ("HTTP/1.0", ["Connection: close"], False),
        ("HTTP/1.0", ["Connection: keep-alive"], True),
        ("HTTP/1.0", ["Connection: Keep-Alive"], True),
    ])
    def test_keep_alive_matrix(self, version, headers, expected):
        lines = ["GET /healthz " + version, "Host: t", *headers]
        request = parse(("\r\n".join(lines) + "\r\n\r\n").encode())
        assert request.version == version
        assert request.keep_alive is expected

    def test_duplicate_content_length_is_400(self):
        raw = (b"POST /price HTTP/1.1\r\nHost: t\r\n"
               b"Content-Length: 5\r\nContent-Length: 50\r\n\r\nhello")
        with pytest.raises(BadRequest) as info:
            parse(raw)
        assert info.value.status == 400
        assert "duplicate Content-Length" in str(info.value)

    def test_duplicate_content_length_same_value_still_400(self):
        raw = (b"POST /price HTTP/1.1\r\nHost: t\r\n"
               b"Content-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
        with pytest.raises(BadRequest):
            parse(raw)

    def test_other_duplicate_headers_are_comma_joined(self):
        request = parse(request_bytes(
            headers=["X-Tag: one", "X-Tag: two"]))
        assert request.headers["x-tag"] == "one, two"

    def test_content_length_with_transfer_encoding_is_400(self):
        raw = (b"POST /price HTTP/1.1\r\nHost: t\r\n"
               b"Content-Length: 5\r\n"
               b"Transfer-Encoding: chunked\r\n\r\nhello")
        with pytest.raises(BadRequest) as info:
            parse(raw)
        assert "chunked" in str(info.value)

    def test_pipelined_requests_parse_sequentially(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(request_bytes(path="/a")
                             + request_bytes(path="/b"))
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third
        first, second, third = asyncio.run(go())
        assert (first.path, second.path) == ("/a", "/b")
        assert third is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(BadRequest) as info:
            parse(b"GARBAGE\r\n\r\n")
        assert info.value.status == 400

    def test_unknown_method_is_405(self):
        with pytest.raises(BadRequest) as info:
            parse(request_bytes(method="BREW", body=b""))
        assert info.value.status == 405

    def test_unsupported_protocol_is_400(self):
        with pytest.raises(BadRequest):
            parse(b"GET / SPDY/3\r\n\r\n")

    def test_malformed_header_is_400(self):
        with pytest.raises(BadRequest):
            parse(b"GET / HTTP/1.1\r\nno colon here\r\n\r\n")

    def test_header_flood_is_400(self):
        headers = [f"X-{i}: v" for i in range(MAX_HEADERS + 1)]
        with pytest.raises(BadRequest) as info:
            parse(request_bytes(method="GET", headers=headers, body=b""))
        assert "too many headers" in str(info.value)

    def test_oversized_body_is_413(self):
        raw = (b"POST /price HTTP/1.1\r\nContent-Length: "
               + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n")
        with pytest.raises(BadRequest) as info:
            parse(raw)
        assert info.value.status == 413

    @pytest.mark.parametrize("length", ["-5", "many"])
    def test_bad_content_length_is_400(self, length):
        raw = (f"POST /price HTTP/1.1\r\nContent-Length: {length}"
               f"\r\n\r\n").encode()
        with pytest.raises(BadRequest) as info:
            parse(raw)
        assert info.value.status == 400

    def test_truncated_body_is_400(self):
        raw = b"POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(BadRequest) as info:
            parse(raw)
        assert "truncated" in str(info.value)

    def test_chunked_bodies_rejected(self):
        raw = (b"POST /p HTTP/1.1\r\n"
               b"Transfer-Encoding: chunked\r\n\r\n")
        with pytest.raises(BadRequest) as info:
            parse(raw)
        assert "chunked" in str(info.value)


class TestJsonBody:
    def test_empty_body_is_400(self):
        with pytest.raises(BadRequest):
            HttpRequest("POST", "/price").json()

    def test_undecodable_body_is_400(self):
        request = HttpRequest("POST", "/price", body=b"{not json")
        with pytest.raises(BadRequest) as info:
            request.json()
        assert "invalid JSON body" in str(info.value)


class TestResponses:
    def test_render_parse_roundtrip(self):
        body = json_body({"x": 1})
        raw = render_response(200, body, keep_alive=False)
        status, headers, parsed = parse_response(raw)
        assert status == 200
        assert headers["connection"] == "close"
        assert headers["content-length"] == str(len(body))
        assert json.loads(parsed) == {"x": 1}

    def test_parse_response_rejects_truncation(self):
        raw = render_response(200, json_body({"x": 1}))
        with pytest.raises(ValueError):
            parse_response(raw[:10])  # no header terminator
        with pytest.raises(ValueError):
            parse_response(raw[:-2])  # short body

    def test_unknown_status_still_renders(self):
        raw = render_response(418, b"{}")
        status, _headers, _body = parse_response(raw)
        assert status == 418
