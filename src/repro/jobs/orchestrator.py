"""The orchestrating runner: a drop-in ``Runner`` backed by the jobs
layer.

:class:`JobRunner` subclasses :class:`~repro.sim.runner.Runner`, so
every experiment function keeps its signature and behaviour.  What
changes is where results come from:

1. results prefetched through :meth:`prefetch` (parallel, cached);
2. otherwise the content-addressed disk cache;
3. otherwise the staged pricing pipeline (:mod:`repro.stages`) bound
   to the same store, which reuses any frozen stage artifacts and then
   populates the cell-level cache.

Profile-level helpers (``workload``/``profiles``) stay inherited and
in-process: experiments that inspect raw profiles (fig18's compression
column, fig21, sorting) still work unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.config import SystemConfig
from repro.jobs.cache import NullCache, ResultCache, StoreConfig
from repro.jobs.executor import JobExecutor
from repro.jobs.fingerprint import job_fingerprint
from repro.jobs.model import (
    RunRequest,
    build_job_graph,
    canonical_request,
    params_to_kwargs,
)
from repro.jobs.telemetry import (
    JobRecord,
    TelemetryWriter,
    default_telemetry_path,
)
from repro.sim.metrics import RunMetrics
from repro.sim.runner import Runner


class JobRunner(Runner):
    """Memoizing runner whose results flow through the job layer."""

    def __init__(self, scale: int = None,  # type: ignore[assignment]
                 system: Optional[SystemConfig] = None,
                 jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 telemetry_path: Optional[str] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 progress: Optional[Callable[[str], None]] = None,
                 partitions: int = 1
                 ) -> None:
        if scale is None:
            from repro.graph.datasets import DEFAULT_SCALE
            scale = DEFAULT_SCALE
        super().__init__(scale=scale, system=system)
        self.jobs = jobs
        self.partitions = partitions
        self.cache = ResultCache(cache_dir) if cache_dir else \
            NullCache()
        self.store = StoreConfig.from_cache(
            self.cache, stream_partitions=partitions)
        if telemetry_path is None and cache_dir:
            telemetry_path = default_telemetry_path(cache_dir)
        self.telemetry_path = telemetry_path
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self._results: Dict[RunRequest, RunMetrics] = {}
        self._telemetry: Optional[TelemetryWriter] = None
        self._pricer = None

    # -- orchestration -----------------------------------------------------

    def _writer(self) -> TelemetryWriter:
        """One telemetry stream shared by every prefetch/run of this
        runner, so a whole report lands in a single JSONL file."""
        if self._telemetry is None:
            from repro.obs import TRACER
            self._telemetry = TelemetryWriter(path=self.telemetry_path,
                                              tracer=TRACER)
        return self._telemetry

    def prefetch(self, requests: Iterable[RunRequest]) -> int:
        """Execute (or load from cache) a batch of requests up front.

        Returns the number of requests now resident in memory.
        """
        todo = [r for r in requests if r not in self._results]
        if todo:
            executor = JobExecutor(
                scale=self.scale, system=self.system, jobs=self.jobs,
                cache=self.cache, telemetry=self._writer(),
                timeout=self.timeout, retries=self.retries,
                progress=self.progress, partitions=self.partitions)
            self._results.update(executor.run(todo))
        return len(self._results)

    # -- Runner interface --------------------------------------------------

    def run(self, app: str, scheme, dataset: str,
            preprocessing: str = "none", **kwargs) -> RunMetrics:
        # Canonicalization folds ablation kwargs into the scheme name,
        # so `run(..., "phi+spzip", parts=...)` and the equivalent
        # bracket string share one request, memo entry, and cache key.
        request = canonical_request(app, scheme, dataset, preprocessing,
                                    **kwargs)
        hit = self._results.get(request)
        if hit is not None:
            return hit
        # Disk cache, then the inherited in-process path.
        graph = build_job_graph([request])
        job = graph.jobs[graph.request_jobs[request]]
        key = job_fingerprint(job, self.scale, self.system)
        metrics = self.cache.get(key)
        if metrics is None:
            # Miss path prices through the staged pipeline bound to the
            # same store, so partial work (frozen streams, replays)
            # survives even when the cell-level key missed.
            if self._pricer is None:
                from repro.stages import StagePricer
                self._pricer = StagePricer(scale=self.scale,
                                           system=self.system,
                                           cache=self.cache,
                                           store=self.store)
            metrics = self._pricer.price(
                app, request.scheme, dataset, preprocessing,
                **params_to_kwargs(request.params))
            self.cache.put(key, metrics)
            status = "miss"
        else:
            status = "hit"
        if self.telemetry_path:
            self._writer().record(JobRecord(
                job_id=job.job_id, kind="price", status=status,
                app=app, dataset=dataset, preprocessing=preprocessing,
                scheme=request.scheme, cache_key=key))
        self._results[request] = metrics
        return metrics
