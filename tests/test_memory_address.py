"""Unit tests for the flat virtual address space."""

import numpy as np
import pytest

from repro.memory import AddressSpace, LINE_BYTES


class TestAllocation:
    def test_regions_are_line_aligned(self):
        space = AddressSpace()
        a = space.alloc("a", 100, "adjacency")
        b = space.alloc("b", 100, "updates")
        assert a.base % LINE_BYTES == 0
        assert b.base % LINE_BYTES == 0
        assert b.base >= a.end

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("x", 8)
        with pytest.raises(ValueError):
            space.alloc("x", 8)

    def test_bad_class_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("x", 8, "bogus")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("x", -1)

    def test_zero_size_allocates_minimum(self):
        region = AddressSpace().alloc("empty", 0)
        assert region.nbytes == 1


class TestLookup:
    def test_region_of_interior_address(self):
        space = AddressSpace()
        region = space.alloc("r", 256, "updates")
        assert space.region_of(region.base + 100) is region

    def test_region_of_gap_is_none(self):
        space = AddressSpace()
        region = space.alloc("r", 10)
        assert space.region_of(region.end + LINE_BYTES) is None

    def test_region_of_below_all_is_none(self):
        space = AddressSpace()
        space.alloc("r", 10)
        assert space.region_of(0) is None

    def test_data_class_of(self):
        space = AddressSpace()
        region = space.alloc("adj", 64, "adjacency")
        assert space.data_class_of(region.base) == "adjacency"
        assert space.data_class_of(5) == "other"

    def test_region_by_name(self):
        space = AddressSpace()
        region = space.alloc("named", 8)
        assert space.region("named") is region


class TestFunctionalAccess:
    def test_store_load_roundtrip(self):
        space = AddressSpace()
        region = space.alloc("buf", 64)
        space.store(region.base + 4, b"hello")
        assert space.load(region.base + 4, 5) == b"hello"

    def test_elems_roundtrip(self):
        space = AddressSpace()
        values = np.arange(16, dtype=np.uint32)
        region = space.alloc_array("arr", values, "source_vertex")
        out = space.load_elems(region.base, 16, np.uint32)
        assert np.array_equal(out, values)

    def test_alloc_array_copies(self):
        space = AddressSpace()
        values = np.arange(4, dtype=np.uint32)
        region = space.alloc_array("arr", values)
        values[0] = 99
        assert space.load_elems(region.base, 1, np.uint32)[0] == 0

    def test_unmapped_access_raises(self):
        space = AddressSpace()
        with pytest.raises(MemoryError):
            space.load(0x10, 4)

    def test_overrun_raises(self):
        space = AddressSpace()
        region = space.alloc("small", 8)
        with pytest.raises(MemoryError):
            space.load(region.base + 4, 8)

    def test_store_elems(self):
        space = AddressSpace()
        region = space.alloc("arr", 32)
        space.store_elems(region.base, np.array([1.5, 2.5],
                                                dtype=np.float64))
        out = space.load_elems(region.base, 2, np.float64)
        assert out.tolist() == [1.5, 2.5]
