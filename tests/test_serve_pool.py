"""Compute backends (repro.serve.pool) and app-level batch dispatch."""

import asyncio
from collections import Counter

import pytest

from repro.jobs import ResultCache
from repro.jobs.model import build_job_graph, canonical_request
from repro.serve import (
    ProcessBackend,
    ServeApp,
    ThreadBackend,
    TieredStore,
    make_backend,
    parse_price,
)

SCALE = 65536

SCHEMES = ("push", "push+spzip", "phi", "phi+spzip", "ub", "ub+spzip")


def run(coro):
    return asyncio.run(coro)


def one_group(app="dc", dataset="arb", schemes=("push", "phi")):
    requests = [canonical_request(app, scheme, dataset)
                for scheme in schemes]
    graph = build_job_graph(requests)
    ((profile, prices),) = graph.groups()
    return profile, prices


def make_app(tmp_path, **kwargs):
    store = TieredStore(ResultCache(str(tmp_path / "cache")))
    return ServeApp(scale=SCALE, store=store, **kwargs)


class TestMakeBackend:
    def test_builds_by_name(self):
        thread = make_backend("thread", 2)
        process = make_backend("process", 2)
        try:
            assert isinstance(thread, ThreadBackend)
            assert isinstance(process, ProcessBackend)
        finally:
            thread.close()
            process.close()

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError) as info:
            make_backend("gpu", 2)
        assert "thread" in str(info.value)
        assert "process" in str(info.value)

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_rejects_nonpositive_workers(self, name):
        with pytest.raises(ValueError):
            make_backend(name, 0)


class TestThreadBackend:
    def test_runs_group_and_counts_dispatches(self):
        backend = ThreadBackend(workers=2)
        profile, prices = one_group()

        async def go():
            return await backend.run_group(SCALE, None, profile, prices)

        try:
            outcomes = run(go())
        finally:
            backend.close()
        assert len(outcomes) == 1 + len(prices)
        assert all(error == "" for *_rest, error in outcomes)
        assert backend.stats() == {"name": "thread", "workers": 2,
                                   "dispatches": 1}

    def test_same_profile_dispatches_serialize(self):
        """Two concurrent same-profile groups run one after the other
        (the per-profile lock), so the Runner memo is built once."""
        backend = ThreadBackend(workers=2)
        profile, prices = one_group(schemes=SCHEMES)
        order = []
        original = backend._run_locked

        def observed(*args):
            order.append("start")
            result = original(*args)
            order.append("end")
            return result

        backend._run_locked = observed

        async def go():
            await asyncio.gather(
                backend.run_group(SCALE, None, profile, prices[:3]),
                backend.run_group(SCALE, None, profile, prices[3:]))

        try:
            run(go())
        finally:
            backend.close()
        assert order in (["start", "end", "start", "end"],)


class TestProcessBackend:
    def test_runs_group_in_worker_process(self):
        import os
        backend = ProcessBackend(workers=2)
        profile, prices = one_group(dataset="ukl")

        async def go():
            return await backend.run_group(SCALE, None, profile, prices)

        try:
            outcomes = run(go())
        finally:
            backend.close()
        assert len(outcomes) == 1 + len(prices)
        assert all(error == "" for *_rest, error in outcomes)
        if backend.stats()["pool"] == "up":  # sandbox may deny pools
            pids = {pid for _j, _m, _w, pid, _e in outcomes}
            assert pids and os.getpid() not in pids
            assert backend.fallbacks == 0
        assert backend.dispatches == 1

    def test_close_releases_shared_graph_segments(self, tmp_path):
        """Pool teardown drops this process's mapped graph segments."""
        from repro.graph import shared
        from repro.graph.datasets import clear_cache
        clear_cache()
        store = shared.enable_graph_store(str(tmp_path / "graphs"))
        backend = ProcessBackend(workers=1)
        try:
            from repro.graph.datasets import load_preprocessed
            load_preprocessed("arb", "none", SCALE)   # build + publish
            load_preprocessed.__wrapped__("arb", "none", SCALE)  # map
            assert store.open_segments > 0
        finally:
            backend.close()
            try:
                assert store.open_segments == 0
            finally:
                shared.disable_graph_store()
                clear_cache()

    def test_broken_pool_falls_back_in_process(self):
        backend = ProcessBackend(workers=1)
        profile, prices = one_group()
        if backend._pool is not None:
            backend._pool.shutdown(wait=False)  # submits now raise

        async def go():
            return await backend.run_group(SCALE, None, profile, prices)

        try:
            outcomes = run(go())
        finally:
            backend.close()
        assert all(error == "" for *_rest, error in outcomes)
        assert backend.fallbacks == 1
        assert len(outcomes) == 1 + len(prices)


class TestAppBatching:
    def test_same_profile_cells_share_one_dispatch(self, tmp_path):
        """Six distinct schemes of one app/dataset: one execute_group."""
        app = make_app(tmp_path, batch_window_s=0.05)
        cells = [parse_price({"app": "dc", "scheme": scheme,
                              "dataset": "arb"})
                 for scheme in SCHEMES]

        async def go():
            try:
                return await asyncio.gather(
                    *(app.price(cell) for cell in cells))
            finally:
                app.close()

        results = run(go())
        assert app.computes == len(SCHEMES)
        assert Counter(s for _m, s in results) == \
            {"computed": len(SCHEMES)}
        assert app.batcher.batches == 1
        assert app.batcher.max_batch == len(SCHEMES)
        assert app.backend.stats()["dispatches"] == 1
        assert app.admission.admitted == 1  # admission gates dispatches

    def test_distinct_profiles_dispatch_independently(self, tmp_path):
        app = make_app(tmp_path, batch_window_s=0.05)
        cells = [parse_price({"app": "dc", "scheme": "push",
                              "dataset": dataset})
                 for dataset in ("arb", "ukl")]

        async def go():
            try:
                return await asyncio.gather(
                    *(app.price(cell) for cell in cells))
            finally:
                app.close()

        run(go())
        assert app.batcher.batches == 2
        assert app.backend.stats()["dispatches"] == 2

    def test_batch_results_are_write_through_and_correct(self, tmp_path):
        """Batched pricing must agree with the jobs layer, cell by
        cell, and land every result in both store tiers."""
        from repro.jobs.executor import execute_group
        app = make_app(tmp_path, batch_window_s=0.05)
        cells = [parse_price({"app": "bfs", "scheme": scheme,
                              "dataset": "arb"})
                 for scheme in ("push", "phi+spzip")]

        async def go():
            try:
                return await asyncio.gather(
                    *(app.price(cell) for cell in cells))
            finally:
                app.close()

        results = run(go())
        graph = build_job_graph(cells)
        ((profile, prices),) = graph.groups()
        reference = {job_id: metrics for job_id, metrics, *_rest
                     in execute_group(SCALE, None, profile, prices)
                     if metrics is not None}
        for cell, (metrics, _source) in zip(cells, results):
            expected = reference[graph.request_jobs[cell]]
            assert metrics.cycles == expected.cycles
            assert metrics.total_traffic == expected.total_traffic
            key = app.request_key(cell)
            assert app.store.get_hot(key) is metrics
            assert app.store.disk.get(key) is not None

    def test_app_on_process_backend_end_to_end(self, tmp_path):
        app = make_app(tmp_path, backend="process", workers=2,
                       batch_window_s=0.05)
        cells = [parse_price({"app": "dc", "scheme": scheme,
                              "dataset": "ukl"})
                 for scheme in ("push", "phi")]

        async def go():
            try:
                return await asyncio.gather(
                    *(app.price(cell) for cell in cells))
            finally:
                app.close()

        results = run(go())
        assert app.computes == 2
        assert all(metrics.cycles > 0 for metrics, _s in results)
        assert app.backend.name == "process"
        assert app.stats()["backend"]["name"] == "process"
        # Served again: the hot tier answers, no second dispatch.
        app2_dispatches = app.backend.stats()["dispatches"]
        assert app2_dispatches == 1

    def test_one_bad_cell_does_not_sink_its_batch(self, tmp_path):
        app = make_app(tmp_path, batch_window_s=0.05)
        good = parse_price({"app": "dc", "scheme": "push",
                            "dataset": "arb"})
        bad = parse_price({"app": "dc", "scheme": "phi",
                           "dataset": "arb"})
        bad_id = build_job_graph([bad]).request_jobs[bad]
        original = app.backend.run_group

        async def sabotage(scale, system, profile, prices,
                           store=None):
            outcomes = await original(scale, system, profile, prices,
                                      store=store)
            return [(job_id, None, wall, pid, "boom")
                    if job_id == bad_id else
                    (job_id, metrics, wall, pid, error)
                    for job_id, metrics, wall, pid, error in outcomes]

        app.backend.run_group = sabotage

        async def go():
            try:
                return await asyncio.gather(app.price(good),
                                            app.price(bad),
                                            return_exceptions=True)
            finally:
                app.close()

        good_result, bad_result = run(go())
        assert good_result[0].cycles > 0
        from repro.serve import ComputeError
        assert isinstance(bad_result, ComputeError)
