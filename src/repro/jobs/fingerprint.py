"""Content-addressed cache keys for job results.

A price job's result is a pure function of (a) the model code, (b) the
system configuration and scale, and (c) the job's own identity — app,
dataset, preprocessing, scheme, extra parameters.  Datasets themselves
are deterministic functions of ``(name, preprocessing, scale)`` (seeded
synthetic generators, see :mod:`repro.graph.datasets`), so naming them
is enough; no graph bytes need hashing.

The *code salt* folds the source text of every module that can affect a
simulation result into the key, so any model change automatically
invalidates stale cache entries — no manual version bumping.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict, is_dataclass
from functools import lru_cache
from typing import Dict, Iterable, Tuple

from repro.config import SystemConfig
from repro.jobs.model import JobSpec

#: Top-level entries under ``src/repro`` that cannot change simulation
#: results: orchestration, rendering, serving, and interface layers.
_SALT_EXCLUDE = {"jobs", "harness", "serve", "cli.py", "__main__.py"}


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of all result-affecting source files, for invalidation."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        rel = os.path.relpath(dirpath, root)
        top = rel.split(os.sep, 1)[0]
        if top in _SALT_EXCLUDE or "__pycache__" in rel:
            dirnames[:] = []
            continue
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py") or \
                    (rel == "." and name in _SALT_EXCLUDE):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()[:16]


# --------------------------------------------------------------------------
# Stage-level fingerprints (the staged pricing pipeline, repro.stages)
# --------------------------------------------------------------------------

#: Source dependencies of each pricing stage, relative to ``src/repro``
#: (a directory hashes every ``.py`` beneath it).  A stage's salt
#: rotates only when code that can change *its* output changes, so an
#: edit to the timing model leaves stream/replay/compress artifacts
#: valid.  Shared low-level modules (``runtime/traffic.py``,
#: ``memory/address.py``) appear in several stages deliberately: an
#: edit there conservatively invalidates them all.
STAGE_DEPS: Dict[str, Tuple[str, ...]] = {
    "stream": ("stages/artifacts.py", "stages/streams.py",
               "runtime/traffic.py", "runtime/traffic_array.py",
               "runtime/workload.py", "apps",
               "graph", "sparse", "utils", "memory/address.py"),
    "replay": ("stages/artifacts.py", "stages/replay.py",
               "runtime/traffic.py", "runtime/traffic_array.py",
               "memory/address.py", "memory/batch.py"),
    "compress": ("stages/artifacts.py", "stages/compress.py",
                 "runtime/traffic.py", "runtime/traffic_array.py",
                 "compression", "graph/idspace.py", "memory/address.py",
                 "memory/compressed.py", "schemes/pricing.py"),
    "timing": ("stages/artifacts.py", "stages/timing.py", "schemes",
               "sim", "runtime/traffic.py", "runtime/traffic_array.py",
               "runtime/scheduling.py", "config.py",
               "memory/address.py"),
}

#: Stage evaluation order (each stage keys on the digests of the ones
#: before it that it consumes).
STAGE_NAMES = ("stream", "replay", "compress", "timing")


@lru_cache(maxsize=None)
def stage_salt(stage: str) -> str:
    """Digest of one stage's source dependencies."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for rel in STAGE_DEPS[stage]:
        path = os.path.join(root, rel)
        if os.path.isfile(path):
            digest.update(rel.encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
            continue
        for dirpath, dirnames, filenames in sorted(os.walk(path)):
            if "__pycache__" in dirpath:
                dirnames[:] = []
                continue
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                digest.update(os.path.relpath(full, root).encode())
                with open(full, "rb") as handle:
                    digest.update(handle.read())
    return digest.hexdigest()[:16]


def stage_config_slice(stage: str, cfg) -> Dict[str, object]:
    """The model-config knobs one stage's output actually depends on.

    ``cfg`` is a resolved :class:`~repro.runtime.traffic.ModelConfig`
    (per-input LLC sizing already applied).  Slices hold *resolved*
    values, so config-construction code changes flow into keys through
    the values they produce; everything else about the system config is
    deliberately absent — that is what makes a bandwidth edit reuse
    frozen replay artifacts.
    """
    if stage == "stream":
        return {}
    if stage == "replay":
        return {"llc_lines": cfg.llc_lines,
                "llc_size_bytes": cfg.system.llc.size_bytes,
                "bin_llc_fraction": cfg.bin_llc_fraction}
    if stage == "compress":
        return {"id_scale": cfg.id_scale,
                "sort_updates": cfg.sort_updates}
    if stage == "timing":
        return {"num_cores": cfg.system.num_cores,
                "bytes_per_cycle": cfg.system.bytes_per_cycle,
                "llc_lines": cfg.llc_lines}
    raise KeyError(f"unknown stage {stage!r}")


def stream_fingerprint(app: str, dataset: str, preprocessing: str,
                       scale: int) -> str:
    """Cache key of the stream-gen artifact: identity + stream salt.

    Datasets are deterministic functions of (name, preprocessing,
    scale), so the identity tuple is the content address.
    """
    return fingerprint({"stage": "stream",
                        "salt": stage_salt("stream"),
                        "app": app, "dataset": dataset,
                        "preprocessing": preprocessing,
                        "scale": scale})


def stream_partition_fingerprint(lo: int, hi: int,
                                 payload_digest: str) -> str:
    """Cache key of one vertex-range stream partition.

    ``payload_digest`` hashes the partition's *actual inputs* — the
    graph rows in ``[lo, hi)`` and each iteration's active-source slice
    (see ``stages/streams.py``) — so the key is self-validating: a
    graph delta rotates it exactly for the partitions whose rows or
    active sources changed, and reuse is bit-correct for every app by
    construction.  The stream stage salt folds in code changes.
    """
    return fingerprint({"stage": "stream.partition",
                        "salt": stage_salt("stream"),
                        "lo": lo, "hi": hi,
                        "payload": payload_digest})


def stage_fingerprint(stage: str, upstream: Iterable[str],
                      config_slice: Dict[str, object]) -> str:
    """Cache key of a downstream stage's artifact.

    ``upstream`` is the *content digests* of the consumed artifacts
    (not their keys): a stage whose code changed but whose output did
    not leaves every downstream key intact — early cutoff.
    """
    return fingerprint({"stage": stage, "salt": stage_salt(stage),
                        "upstream": list(upstream),
                        "config": config_slice})


def artifact_digest(value: object) -> str:
    """Content digest of one stage artifact (chains stage keys).

    Pickled at a pinned protocol so the digest is stable across
    processes of one interpreter install; artifacts are plain
    dataclasses of numpy arrays and scalars, which pickle
    deterministically.
    """
    return hashlib.sha256(
        pickle.dumps(value, protocol=4)).hexdigest()[:16]


def _jsonable(value: object) -> object:
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(v) for v in value]
        return sorted(items, key=repr) if isinstance(
            value, (set, frozenset)) else items
    return value


def fingerprint(payload: object) -> str:
    """SHA-256 of a canonical-JSON rendering of ``payload``."""
    text = json.dumps(_jsonable(payload), sort_keys=True,
                      separators=(",", ":"), default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def job_fingerprint(job: JobSpec, scale: int,
                    system: SystemConfig) -> str:
    """Cache key for one price job under one model configuration.

    ``job.scheme`` is the spec's canonical string (see
    :func:`repro.jobs.model.canonical_request`): ablation variants like
    ``phi+spzip[parts=adjacency]`` are distinct scheme identities here,
    so Fig 19/20 runs cache independently of the plain scheme.
    """
    return fingerprint({
        "salt": code_salt(),
        "scale": scale,
        "system": system,
        "kind": job.kind,
        "app": job.app,
        "dataset": job.dataset,
        "preprocessing": job.preprocessing,
        "scheme": job.scheme,
        "params": job.params,
    })
