"""Fig 16: per-input speedups and traffic, no preprocessing.

Paper anchors: trends are consistent across inputs — PHI+SpZip fastest
on all applications and inputs; UB+SpZip and PHI+SpZip yield consistent
gains over their baselines.
"""

from conftest import run_once

from repro.harness import fig16_per_input
from repro.schemes import scheme_names


def test_fig16_per_input(benchmark, runner, report):
    result = run_once(benchmark, fig16_per_input, runner, "none")
    report(result)
    by_key = {(r["app"], r["input"], r["scheme"]): r
              for r in result.rows}
    apps = sorted({r["app"] for r in result.rows})
    inputs = sorted({r["input"] for r in result.rows})
    for app in apps:
        for dataset in inputs:
            rows = {s: by_key[(app, dataset, s)]
                    for s in scheme_names("paper")}
            # PHI+SpZip is (essentially) fastest on every (app, input)
            # pair; the model allows UB+SpZip photo-finishes within 10%
            # (the paper itself notes UB+SpZip "is nearly as competitive
            # as, and sometimes better than, PHI").
            fastest = max(rows.values(), key=lambda r: r["speedup"])
            assert rows["phi+spzip"]["speedup"] >= \
                0.9 * fastest["speedup"], (app, dataset)
            # SpZip yields consistent speedups over each baseline.
            for base in ("push", "ub", "phi"):
                assert rows[f"{base}+spzip"]["speedup"] >= \
                    rows[base]["speedup"], (app, dataset, base)
