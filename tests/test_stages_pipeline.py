"""The stage pipeline's caching semantics: keys, invalidation, counters,
and the store's crash/race hardening.

The delta-invalidation matrix is the contract that makes incremental
sweeps work (docs/PIPELINE.md): a knob edit recomputes exactly the
stages whose config slice contains it, everything upstream is a cache
hit.  The crash-simulation tests pin the atomic-write guarantee of
``ResultCache.put`` — a torn or orphaned write must never surface as a
corrupt read.
"""

import os
import pickle
from dataclasses import replace

import pytest

from repro.config import SystemConfig
from repro.jobs.cache import ResultCache
from repro.jobs.fingerprint import (
    STAGE_DEPS,
    STAGE_NAMES,
    artifact_digest,
    stage_config_slice,
    stage_fingerprint,
    stage_salt,
    stream_fingerprint,
)
from repro.stages import (
    StagePricer,
    reset_stage_counters,
    stage_counters,
)

SCALE = 4096


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_stage_counters()
    yield
    reset_stage_counters()


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestStageFingerprints:
    def test_salts_are_stable_and_distinct(self):
        assert set(STAGE_DEPS) == set(STAGE_NAMES)
        salts = {stage: stage_salt(stage) for stage in STAGE_NAMES}
        assert all(len(s) == 16 for s in salts.values())
        assert len(set(salts.values())) == len(salts)
        assert salts == {s: stage_salt(s) for s in STAGE_NAMES}

    def test_stream_key_covers_identity(self):
        base = stream_fingerprint("pr", "ukl", "none", SCALE)
        assert base == stream_fingerprint("pr", "ukl", "none", SCALE)
        for other in (("cc", "ukl", "none", SCALE),
                      ("pr", "twi", "none", SCALE),
                      ("pr", "ukl", "dfs", SCALE),
                      ("pr", "ukl", "none", 2 * SCALE)):
            assert stream_fingerprint(*other) != base

    def test_downstream_key_chains_on_content(self):
        key = stage_fingerprint("replay", ["aaaa"], {"llc_lines": 64})
        assert key == stage_fingerprint("replay", ["aaaa"],
                                        {"llc_lines": 64})
        assert key != stage_fingerprint("replay", ["bbbb"],
                                        {"llc_lines": 64})
        assert key != stage_fingerprint("replay", ["aaaa"],
                                        {"llc_lines": 128})

    def test_config_slices_are_disjoint_from_timing_knobs(self):
        cfg = StagePricer(scale=SCALE)  # noqa: F841 - build system
        from repro.runtime.traffic import ModelConfig
        system = SystemConfig().scaled(SCALE)
        mc = ModelConfig(system=system, id_scale=SCALE)
        faster = replace(system, memory=replace(
            system.memory, gb_per_sec_per_controller=99.0))
        mc2 = ModelConfig(system=faster, id_scale=SCALE)
        for stage in ("stream", "replay", "compress"):
            assert stage_config_slice(stage, mc) == \
                stage_config_slice(stage, mc2)
        assert stage_config_slice("timing", mc) != \
            stage_config_slice("timing", mc2)

    def test_stream_generator_sources_are_salted_deps(self,
                                                      monkeypatch):
        """``runtime/traffic_array.py`` must salt every stage.

        The array-native generators and the vectorized size models live
        there; an implementation edit has to rotate all four stage
        salts or frozen artifacts priced under the old code would be
        served as current.  Dropping the file from the dep lists must
        change each salt — proof its bytes are folded into the keys.
        """
        for stage in STAGE_NAMES:
            assert "runtime/traffic_array.py" in STAGE_DEPS[stage]
        before = {s: stage_salt(s) for s in STAGE_NAMES}
        pruned = {s: tuple(d for d in deps
                           if d != "runtime/traffic_array.py")
                  for s, deps in STAGE_DEPS.items()}
        import repro.jobs.fingerprint as fp
        monkeypatch.setattr(fp, "STAGE_DEPS", pruned)
        stage_salt.cache_clear()
        try:
            after = {s: stage_salt(s) for s in STAGE_NAMES}
        finally:
            stage_salt.cache_clear()
        for stage in STAGE_NAMES:
            assert after[stage] != before[stage]

    def test_artifact_digest_is_content_addressed(self):
        import numpy as np
        a = {"x": np.arange(8), "y": 3}
        b = {"x": np.arange(8), "y": 3}
        assert artifact_digest(a) == artifact_digest(b)
        assert artifact_digest(a) != artifact_digest(
            {"x": np.arange(9), "y": 3})


# ---------------------------------------------------------------------------
# Delta-aware invalidation
# ---------------------------------------------------------------------------


class TestInvalidation:
    def _sweep(self, system, cache):
        pricer = StagePricer(scale=SCALE, system=system, cache=cache)
        pricer.price("pr", "push+spzip", "ukl", "none")
        return stage_counters()

    def test_cold_run_computes_every_stage(self, tmp_path):
        counters = self._sweep(SystemConfig().scaled(SCALE),
                               ResultCache(str(tmp_path)))
        assert counters == {f"{s}.computed": 1 for s in STAGE_NAMES}

    def test_identical_rerun_hits_every_stage(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        system = SystemConfig().scaled(SCALE)
        self._sweep(system, cache)
        reset_stage_counters()
        counters = self._sweep(system, cache)
        assert counters == {f"{s}.hit": 1 for s in STAGE_NAMES}

    def test_bandwidth_edit_recomputes_timing_only(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        system = SystemConfig().scaled(SCALE)
        self._sweep(system, cache)
        reset_stage_counters()
        faster = replace(system, memory=replace(
            system.memory,
            gb_per_sec_per_controller=2
            * system.memory.gb_per_sec_per_controller))
        counters = self._sweep(faster, cache)
        assert counters == {"stream.hit": 1, "replay.hit": 1,
                            "compress.hit": 1, "timing.computed": 1}

    def test_core_count_edit_recomputes_timing_only(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        system = SystemConfig().scaled(SCALE)
        self._sweep(system, cache)
        reset_stage_counters()
        counters = self._sweep(replace(system, num_cores=8), cache)
        assert counters == {"stream.hit": 1, "replay.hit": 1,
                            "compress.hit": 1, "timing.computed": 1}

    def test_llc_geometry_edit_keeps_streams_frozen(self, tmp_path):
        # Associativity reaches the resolved LLC size through the
        # sizing granule, so replay (and everything after) recomputes —
        # but the system-independent stream artifact stays frozen.
        cache = ResultCache(str(tmp_path))
        system = SystemConfig().scaled(SCALE)
        self._sweep(system, cache)
        reset_stage_counters()
        rewayed = replace(system, llc=replace(system.llc, ways=4))
        counters = self._sweep(rewayed, cache)
        assert counters["stream.hit"] == 1
        assert counters["replay.computed"] == 1
        assert counters["compress.computed"] == 1
        assert counters["timing.computed"] == 1

    def test_new_scheme_recomputes_timing_only(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        system = SystemConfig().scaled(SCALE)
        pricer = StagePricer(scale=SCALE, system=system, cache=cache)
        pricer.price("pr", "push+spzip", "ukl", "none")
        reset_stage_counters()
        pricer.price("pr", "ub+spzip", "ukl", "none")
        counters = stage_counters()
        assert counters == {"stream.memo": 1, "replay.memo": 1,
                            "compress.memo": 1, "timing.computed": 1}

    def test_stream_code_edit_invalidates_every_stage(self, tmp_path,
                                                      monkeypatch):
        """A traffic_array edit (simulated by rotating the salts) must
        recompute every stage — stale planted artifacts are unreachable
        under the new keys — and reprice to the same result."""
        cache = ResultCache(str(tmp_path))
        system = SystemConfig().scaled(SCALE)
        pricer = StagePricer(scale=SCALE, system=system, cache=cache)
        first = pricer.price("pr", "push+spzip", "ukl", "none")
        reset_stage_counters()
        import repro.jobs.fingerprint as fp
        real = stage_salt
        monkeypatch.setattr(fp, "stage_salt",
                            lambda stage: real(stage)[::-1])
        edited = StagePricer(scale=SCALE, system=system, cache=cache)
        again = edited.price("pr", "push+spzip", "ukl", "none")
        counters = stage_counters()
        assert counters == {f"{s}.computed": 1 for s in STAGE_NAMES}
        # Same code actually ran, so the reprice is bit-identical.
        assert again == first

    def test_memoized_cell_skips_the_store(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        pricer = StagePricer(scale=SCALE, cache=cache)
        first = pricer.price("pr", "push", "ukl", "none")
        reset_stage_counters()
        again = pricer.price("pr", "push", "ukl", "none")
        assert again == first
        assert stage_counters() == {"stream.memo": 1, "replay.memo": 1,
                                    "compress.memo": 1,
                                    "timing.memo": 1}

    def test_cacheless_pricer_matches_cached(self, tmp_path):
        cached = StagePricer(scale=SCALE,
                             cache=ResultCache(str(tmp_path)))
        bare = StagePricer(scale=SCALE)
        assert cached.price("bfs", "phi+spzip", "ukl", "degree") == \
            bare.price("bfs", "phi+spzip", "ukl", "degree")


# ---------------------------------------------------------------------------
# Store hardening: crash simulation and scan races
# ---------------------------------------------------------------------------


class TestStoreCrashAndRaces:
    def test_torn_write_is_invisible(self, tmp_path):
        """A writer that dies mid-write must leave no readable trace."""
        cache = ResultCache(str(tmp_path))
        cache.put("aa" + "0" * 14, {"ok": True})
        # Simulate the crash: a partial temp file next to the objects
        # (what mkstemp leaves if the process dies before os.replace).
        bucket = os.path.join(str(tmp_path), "objects", "aa")
        with open(os.path.join(bucket, "crashed0.tmp"), "wb") as fh:
            fh.write(b"partial pickle bytes")
        assert cache.get("aa" + "0" * 14) == {"ok": True}
        assert cache.stats()["entries"] == 1  # tmp never counted
        # prune sweeps the orphan without touching live entries.
        kept, removed = cache.prune(["aa" + "0" * 14])
        assert (kept, removed) == (1, 0)
        assert os.listdir(bucket) == ["aa" + "0" * 14 + ".pkl"]

    def test_torn_destination_reads_as_miss(self, tmp_path):
        """Truncated final file (torn at the fs level): miss + delete."""
        cache = ResultCache(str(tmp_path))
        key = "bb" + "0" * 14
        cache.put(key, list(range(1000)))
        path = os.path.join(str(tmp_path), "objects", "bb",
                            key + ".pkl")
        blob = pickle.dumps(list(range(1000)),
                            protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        assert cache.get(key) is None
        assert cache.corrupt_dropped == 1
        assert not os.path.exists(path)

    def test_put_survives_interrupted_predecessor(self, tmp_path):
        """A retried put after a simulated crash fully replaces."""
        cache = ResultCache(str(tmp_path))
        key = "cc" + "0" * 14
        path = os.path.join(str(tmp_path), "objects", "cc",
                            key + ".pkl")
        os.makedirs(os.path.dirname(path))
        with open(path, "wb") as fh:
            fh.write(b"torn")
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"

    def test_stats_tolerates_entries_vanishing_mid_scan(self, tmp_path,
                                                        monkeypatch):
        cache = ResultCache(str(tmp_path))
        cache.put("dd" + "0" * 14, 1)
        cache.put("ee" + "0" * 14, 2)
        doomed = cache._path("dd" + "0" * 14)
        real_getsize = os.path.getsize

        def racy_getsize(path):
            if path == doomed:
                raise FileNotFoundError(path)  # pruned concurrently
            return real_getsize(path)

        monkeypatch.setattr(os.path, "getsize", racy_getsize)
        stats = cache.stats()
        assert stats["entries"] == 1

    def test_prune_counts_concurrent_removal_as_removed(self, tmp_path,
                                                        monkeypatch):
        cache = ResultCache(str(tmp_path))
        cache.put("ff" + "0" * 14, 1)
        errors = []
        cache.on_error = errors.append
        monkeypatch.setattr(
            ResultCache, "keys",
            lambda self: ["ff" + "0" * 14, "00" + "f" * 14])
        kept, removed = cache.prune([])
        assert (kept, removed) == (0, 2)  # vanished entry still counts
        assert errors == []  # a lost race is not an error


# ---------------------------------------------------------------------------
# Executor integration
# ---------------------------------------------------------------------------


class TestExecutorIntegration:
    def test_worker_pricers_share_the_store(self, tmp_path):
        from repro.jobs.executor import JobExecutor
        from repro.jobs.model import RunRequest
        cache = ResultCache(str(tmp_path))
        requests = [RunRequest("dc", s, "arb")
                    for s in ("push", "phi")]
        JobExecutor(scale=SCALE, jobs=1, cache=cache).run(requests)
        reset_stage_counters()
        # A fresh pricer over the same store sees frozen artifacts.
        pricer = StagePricer(scale=SCALE, cache=cache)
        pricer.price("dc", "push", "arb", "none")
        counters = stage_counters()
        assert counters == {f"{s}.hit": 1 for s in STAGE_NAMES}
