"""Incremental-reuse harness for the staged pricing pipeline.

Runs one figure-sized sweep three ways against a single
content-addressed store (docs/PIPELINE.md):

``cold``
    empty store: every stage computes, artifacts persist;
``warm_knob``
    the *same* sweep after mutating one timing config knob (memory
    bandwidth doubles).  Cell-level keys all rotate — the system config
    is in them — but the timing stage's upstream slices don't, so the
    frozen stream/replay/compress artifacts must serve every cell:
    the delta-aware invalidation contract, checked via stage counters;
``warm_identical``
    the same sweep with the original system: pure cell-level cache
    hits, no pipeline work at all.

Results land in ``BENCH_pr8.json`` (timings under ``*_s`` keys, the
schema ``repro perf diff`` treats as timing metrics).  Exits nonzero
if the knob-mutated warm sweep recomputes any pre-timing stage, misses
any frozen artifact, or fails the ``--floor`` speedup over cold
(default 3x).

Run with::

    PYTHONPATH=src python benchmarks/incremental_sweep.py \
        [--out BENCH_pr8.json] [--scale 8192] [--floor 3.0]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from dataclasses import replace

from repro.config import SystemConfig
from repro.jobs import JobRunner
from repro.jobs.model import RunRequest
from repro.stages import reset_stage_counters, stage_counters

#: The sweep: four apps x the paper's six schemes on one input — the
#: shape of one Fig 15 column group.
APPS = ("pr", "cc", "bfs", "dc")
SCHEMES = ("push", "push+spzip", "ub", "ub+spzip", "phi", "phi+spzip")
DATASET = "ukl"


def sweep(scale: int, system, cache_dir: str, requests) -> float:
    """One full sweep on a fresh runner; returns wall seconds."""
    runner = JobRunner(scale=scale, system=system, cache_dir=cache_dir)
    start = time.monotonic()
    runner.prefetch(list(requests))
    return time.monotonic() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pr8.json")
    parser.add_argument("--scale", type=int, default=8192,
                        help="model scale (smaller = larger graphs)")
    parser.add_argument("--floor", type=float, default=3.0,
                        help="minimum cold/warm_knob speedup")
    args = parser.parse_args(argv)

    requests = [RunRequest(app, scheme, DATASET)
                for app in APPS for scheme in SCHEMES]
    cells = len(requests)
    cache_dir = tempfile.mkdtemp(prefix="repro-incremental-")
    system = SystemConfig().scaled(args.scale)

    reset_stage_counters()
    cold_s = sweep(args.scale, system, cache_dir, requests)
    cold_counters = stage_counters()

    # One timing knob: double the per-controller memory bandwidth.
    # This reaches the cost models through system.bytes_per_cycle and
    # nothing else, so only the timing stage may recompute.
    faster = replace(system, memory=replace(
        system.memory,
        gb_per_sec_per_controller=2
        * system.memory.gb_per_sec_per_controller))
    reset_stage_counters()
    warm_knob_s = sweep(args.scale, faster, cache_dir, requests)
    knob_counters = stage_counters()

    reset_stage_counters()
    warm_identical_s = sweep(args.scale, system, cache_dir, requests)
    identical_counters = stage_counters()

    speedup = cold_s / max(warm_knob_s, 1e-9)
    failures = []
    for stage in ("stream", "replay", "compress"):
        if knob_counters.get(f"{stage}.computed", 0):
            failures.append(
                f"{stage} recomputed after a timing-only knob edit "
                f"({knob_counters})")
        if not knob_counters.get(f"{stage}.hit", 0):
            failures.append(
                f"{stage} artifacts were not reused from the store "
                f"({knob_counters})")
    if knob_counters.get("timing.computed", 0) != cells:
        failures.append(
            f"expected {cells} timing recomputes, saw "
            f"{knob_counters.get('timing.computed', 0)}")
    if identical_counters:
        failures.append(
            f"identical re-sweep touched the pipeline: "
            f"{identical_counters}")
    if speedup < args.floor:
        failures.append(
            f"warm_knob speedup {speedup:.1f}x under the "
            f"{args.floor:.1f}x floor")

    payload = {
        "bench": "pr8_incremental_sweep",
        "scale": args.scale,
        "cells": cells,
        "speedup_floor": args.floor,
        "python": platform.python_version(),
        "cold": {"wall_s": cold_s, "counters": cold_counters},
        "warm_knob": {"wall_s": warm_knob_s,
                      "counters": knob_counters,
                      "speedup": speedup},
        "warm_identical": {"wall_s": warm_identical_s,
                           "counters": identical_counters},
        "pass": not failures,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print(f"cold           {cold_s:8.3f}s  {cold_counters}")
    print(f"warm_knob      {warm_knob_s:8.3f}s  speedup "
          f"{speedup:.1f}x  {knob_counters}")
    print(f"warm_identical {warm_identical_s:8.3f}s  "
          f"{identical_counters or 'no pipeline work'}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
