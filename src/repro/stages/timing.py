"""Stage 4 — timing: assemble profiles and run the cost/timing models.

The cheap suffix of the pipeline: stitch the three upstream artifacts
back into :class:`~repro.runtime.traffic.IterationProfile` records
(computing the work-stealing load imbalance here, since it depends on
the core count — a timing knob), then price one scheme through the
*same* aggregation code as the monolithic path
(:func:`repro.schemes.pricing._price_spec` /
:func:`~repro.schemes.pricing._simulate_cmh`), so staged and monolithic
results are bit-identical by construction.

The config slice is {num_cores, bytes_per_cycle, llc_lines} plus the
scheme identity: editing memory bandwidth, the core count, or a cost
constant recomputes only this stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.scheduling import iteration_imbalance
from repro.runtime.traffic import IterationProfile, ModelConfig
from repro.schemes.pricing import _price_spec, _simulate_cmh
from repro.schemes.spec import SchemeSpec
from repro.sim.metrics import RunMetrics
from repro.stages.artifacts import (
    CompressArtifact,
    ReplayArtifact,
    StreamArtifact,
)


@dataclass(frozen=True)
class GraphDims:
    """The one graph attribute the cost models read."""

    num_vertices: int


@dataclass(frozen=True)
class PricingView:
    """Lightweight stand-in for a Workload inside the cost models.

    The models read only these attributes (plus ``iterations``, which
    the staged CMH path replaces with frozen replays).
    """

    app: str
    frontier_based: bool
    dst_value_bytes: int
    graph: GraphDims
    iterations: Optional[list] = None


def assemble_profiles(stream: StreamArtifact, replay: ReplayArtifact,
                      compress: CompressArtifact,
                      num_cores: int) -> List[IterationProfile]:
    """Reconstruct the monolithic profiler's output from artifacts."""
    profiles = []
    for it, rp, cp in zip(stream.iterations, replay.iterations,
                          compress.iterations):
        pull_applies = it.all_active and stream.src_value_bytes
        profiles.append(IterationProfile(
            weight=it.weight,
            num_sources=it.num_sources,
            num_edges=it.num_edges,
            offsets_bytes=it.offsets_bytes,
            neigh_bytes=it.neigh_bytes,
            neigh_bytes_compressed=cp.neigh_bytes_compressed,
            edge_value_bytes=it.edge_value_bytes,
            edge_value_bytes_compressed=(
                compress.edge_value_bytes_compressed
                if stream.edge_values is not None else 0),
            src_bytes=it.src_bytes,
            src_bytes_compressed=cp.src_bytes_compressed,
            frontier_bytes=it.frontier_bytes,
            frontier_bytes_compressed=cp.frontier_bytes_compressed,
            push_dest_read_bytes=rp.push_dest_read_bytes,
            push_dest_write_bytes=rp.push_dest_write_bytes,
            push_dest_misses=rp.push_dest_misses,
            num_bins=rp.num_bins,
            update_bytes=it.update_bytes,
            update_bytes_compressed=cp.update_bytes_compressed,
            update_bytes_compressed_unsorted=(
                cp.update_bytes_compressed_unsorted),
            ub_dest_bytes=rp.ub_dest_bytes,
            ub_dest_bytes_compressed=cp.ub_dest_bytes_compressed,
            phi_spilled_updates=int(rp.phi_spilled_ids.size),
            phi_update_bytes=rp.phi_update_bytes,
            phi_update_bytes_compressed=cp.phi_update_bytes_compressed,
            pull_gather_misses=rp.pull_gather_misses,
            pull_gather_read_bytes=rp.pull_gather_read_bytes,
            pull_adj_bytes=stream.pull_adj_bytes if pull_applies else 0,
            pull_adj_bytes_compressed=(
                compress.pull_adj_bytes_compressed if pull_applies
                else 0),
            load_imbalance=iteration_imbalance(it.active_degrees,
                                               num_cores=num_cores),
        ))
    return profiles


def price_staged(spec: SchemeSpec, profiles: List[IterationProfile],
                 view: PricingView, cfg: ModelConfig,
                 dataset: str, preprocessing: str,
                 cmh_ratios: Dict[str, float],
                 push_replays: List[Tuple[int, int]]) -> RunMetrics:
    """Price one scheme against assembled profiles and frozen extras."""
    if spec.cmh:
        return _simulate_cmh(view, profiles, spec, cfg, dataset,
                             preprocessing, ratios=cmh_ratios,
                             replays=push_replays)
    return _price_spec(view, profiles, spec, cfg, dataset,
                       preprocessing)
