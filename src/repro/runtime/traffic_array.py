"""Array-native stream generation and its scalar equivalence oracles.

This module is the single home of the per-strategy access-stream
generators (Push scatter, Update Batching bins, PHI lines, Pull gather,
row gathers and line-granular footprints).  Each generator exists twice:

* an **array-native** form that emits line-id/byte arrays directly from
  the raw CSR arrays in a few numpy passes — the hot path, shared by the
  monolithic profiler (:mod:`repro.runtime.traffic`) and the staged
  pipeline (:mod:`repro.stages`);
* a ``*_scalar`` **oracle** that walks vertices and edges in plain
  Python, exactly like a first implementation would — never called on
  the hot path, kept so the equivalence suites
  (``tests/test_traffic_equivalence.py``,
  ``tests/test_batch_equivalence.py``) can assert the vectorized forms
  bit-identical, and so benchmarks can measure the speedup honestly.

The scalar LRU scatter and PHI coalescing replays (formerly
``traffic._lru_scatter`` / ``traffic._phi_coalesce``) live here for the
same reason.  :func:`profile_iteration_scalar` strings every oracle into
a full per-iteration profile whose fields must equal
:func:`repro.runtime.traffic.profile_iteration` exactly.

Model notes the oracles deliberately reproduce (they are contracts of
the *model*, not vectorization accidents):

* gathers short-circuit to the whole neighbours array when the source
  set covers every vertex;
* row footprints switch to a contiguous whole-array scan when at least
  half the vertices are active;
* the grouped delta sizer zigzags each group's first element within
  uint64 (a top-bit id wraps), unlike ``DeltaCodec`` proper — virtual
  ids never reach that range, and the staged and monolithic paths must
  agree wrap-for-wrap.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compression.bpc import BpcCodec
from repro.compression.delta import _wrapped_delta, _zigzag_int
from repro.graph.idspace import (
    DEFAULT_BLOCK,
    DEFAULT_LOCAL_STRIDE,
    _HASH_MULT,
)
from repro.memory.address import LINE_BYTES

#: Compression chunk length (paper Sec III-C: 32 elements).
CHUNK = 32

_U64_MASK = (1 << 64) - 1


# --------------------------------------------------------------------------
# Array-native stream generators (the hot path)
# --------------------------------------------------------------------------

def gather_row_stream(offsets: np.ndarray, neighbors: np.ndarray,
                      degrees: np.ndarray, sources: np.ndarray,
                      num_vertices: int) -> np.ndarray:
    """The sources' neighbour ids, back to back, from raw CSR arrays."""
    if sources.size >= num_vertices:
        return neighbors
    deg = degrees[sources]
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=neighbors.dtype)
    # idx[k] = offsets[src] + position-within-row, no Python loop.
    cum = np.concatenate(([0], np.cumsum(deg)[:-1]))
    idx = (np.repeat(offsets[sources] - cum, deg)
           + np.arange(total, dtype=np.int64))
    return neighbors[idx]


def push_scatter_lines(dsts: np.ndarray, dst_value_bytes: int) -> np.ndarray:
    """Destination-line stream of Push's read-modify-write scatter."""
    per_line = max(1, LINE_BYTES // dst_value_bytes)
    return dsts.astype(np.int64) // per_line


def ub_bin_stream(dsts: np.ndarray, update_values: np.ndarray,
                  vertices_per_bin: int
                  ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Update Batching's binned update stream.

    Returns ``(sorted_ids, sorted_vals, touched_bins)``: the update ids
    (and their payloads, when present) in bin-stable order — the exact
    stream binning writes to memory — plus the distinct-bin count.
    """
    bins = dsts.astype(np.int64) // vertices_per_bin
    order = np.argsort(bins, kind="stable")
    sorted_ids = dsts[order].astype(np.uint32)
    sorted_vals = update_values[order] \
        if update_values.size == dsts.size \
        else np.empty(0, dtype=np.uint32)
    return sorted_ids, sorted_vals, int(np.unique(bins).size)


def pull_gather_lines(pull_neighbors: np.ndarray,
                      src_value_bytes: int) -> np.ndarray:
    """Source-line stream of Pull's transposed gather."""
    per_line = max(1, LINE_BYTES // src_value_bytes)
    return pull_neighbors.astype(np.int64) // per_line


def row_line_bytes(offsets: np.ndarray, num_vertices: int, num_edges: int,
                   sources: np.ndarray, elem_bytes: int = 4) -> int:
    """Line-granular bytes to fetch the sources' neighbour rows."""
    if sources.size == 0:
        return 0
    if sources.size >= num_vertices * 0.5:
        # Near-contiguous scan of the whole neighbours array.
        return ceil_lines(num_edges * elem_bytes)
    return row_line_bytes_sparse(offsets, sources, elem_bytes)


def row_line_bytes_sparse(offsets: np.ndarray, sources: np.ndarray,
                          elem_bytes: int = 4) -> int:
    """Sparse branch of :func:`row_line_bytes`: per-row line spans,
    summed.  Additive over any split of ``sources`` — unlike the dense
    ≥50%-active branch, which is a whole-array formula — so partitioned
    stream generation stores this per partition and lets the stitcher
    apply the dense switch globally."""
    if sources.size == 0:
        return 0
    starts = offsets[sources] * elem_bytes
    ends = offsets[sources + 1] * elem_bytes
    nonempty = ends > starts
    lines = (ends[nonempty] - 1) // LINE_BYTES \
        - starts[nonempty] // LINE_BYTES + 1
    return int(lines.sum()) * LINE_BYTES


def partition_gather_stream(offsets: np.ndarray, neighbors: np.ndarray,
                            degrees: np.ndarray,
                            sources: np.ndarray) -> np.ndarray:
    """One partition's slice of :func:`gather_row_stream`.

    Identical gather without the all-active shortcut (a partition's
    source slice never covers the whole graph); concatenating the
    partitions' gathers in vertex order reproduces the whole-graph
    stream bit for bit.
    """
    deg = degrees[sources]
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=neighbors.dtype)
    cum = np.concatenate(([0], np.cumsum(deg)[:-1]))
    idx = (np.repeat(offsets[sources] - cum, deg)
           + np.arange(total, dtype=np.int64))
    return neighbors[idx]


def partition_bounds(num_vertices: int, partitions: int,
                     align: int = LINE_BYTES) -> List[Tuple[int, int]]:
    """Split ``[0, num_vertices)`` into ≤ ``partitions`` aligned ranges.

    Boundaries are multiples of ``align`` (the line size in vertices'
    worst case: 64 covers every element width that divides a line), so
    no cache line of any per-vertex array straddles two partitions —
    the property that makes per-partition distinct-line and row-span
    footprints add up exactly to the whole-graph numbers.
    """
    k = max(1, int(partitions))
    if k == 1 or num_vertices <= align:
        return [(0, num_vertices)]
    width = -(-num_vertices // k)
    width = -(-width // align) * align
    bounds = []
    lo = 0
    while lo < num_vertices:
        hi = min(num_vertices, lo + width)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def scattered_line_bytes(indices: np.ndarray, elem_bytes: int) -> int:
    """Distinct-line bytes for scattered single-element reads."""
    if indices.size == 0:
        return 0
    lines = np.unique(indices.astype(np.int64) * elem_bytes // LINE_BYTES)
    return int(lines.size) * LINE_BYTES


def ceil_lines(nbytes: float) -> int:
    return int(-(-nbytes // LINE_BYTES) * LINE_BYTES)


# --------------------------------------------------------------------------
# Scalar oracles: per-vertex/per-edge Python walks
# --------------------------------------------------------------------------

def gather_row_stream_scalar(offsets: np.ndarray, neighbors: np.ndarray,
                             degrees: np.ndarray, sources: np.ndarray,
                             num_vertices: int) -> np.ndarray:
    """Row-by-row Python gather (incl. the all-active shortcut)."""
    if sources.size >= num_vertices:
        return neighbors
    out: List[int] = []
    for src in sources.tolist():
        start = int(offsets[src])
        out.extend(neighbors[start:start + int(degrees[src])].tolist())
    return np.array(out, dtype=neighbors.dtype)


def push_scatter_lines_scalar(dsts: np.ndarray,
                              dst_value_bytes: int) -> np.ndarray:
    per_line = max(1, LINE_BYTES // dst_value_bytes)
    return np.array([dst // per_line for dst in dsts.tolist()],
                    dtype=np.int64)


def ub_bin_stream_scalar(dsts: np.ndarray, update_values: np.ndarray,
                         vertices_per_bin: int
                         ) -> Tuple[np.ndarray, np.ndarray, int]:
    ids = dsts.tolist()
    bins = [dst // vertices_per_bin for dst in ids]
    order = sorted(range(len(ids)), key=lambda i: bins[i])  # stable
    sorted_ids = np.array([ids[i] for i in order], dtype=np.uint32)
    if update_values.size == dsts.size:
        vals = update_values.tolist()
        sorted_vals = np.array([vals[i] for i in order],
                               dtype=update_values.dtype)
    else:
        sorted_vals = np.empty(0, dtype=np.uint32)
    return sorted_ids, sorted_vals, len(set(bins))


def pull_gather_lines_scalar(pull_neighbors: np.ndarray,
                             src_value_bytes: int) -> np.ndarray:
    per_line = max(1, LINE_BYTES // src_value_bytes)
    return np.array([src // per_line for src in pull_neighbors.tolist()],
                    dtype=np.int64)


def row_line_bytes_scalar(offsets: np.ndarray, num_vertices: int,
                          num_edges: int, sources: np.ndarray,
                          elem_bytes: int = 4) -> int:
    if sources.size == 0:
        return 0
    if sources.size >= num_vertices * 0.5:
        return ceil_lines(num_edges * elem_bytes)
    total_lines = 0
    for src in sources.tolist():
        start = int(offsets[src]) * elem_bytes
        end = int(offsets[src + 1]) * elem_bytes
        if end > start:
            total_lines += (end - 1) // LINE_BYTES \
                - start // LINE_BYTES + 1
    return total_lines * LINE_BYTES


def scattered_line_bytes_scalar(indices: np.ndarray,
                                elem_bytes: int) -> int:
    lines = {int(i) * elem_bytes // LINE_BYTES for i in indices.tolist()}
    return len(lines) * LINE_BYTES


def lru_scatter_oracle(lines: np.ndarray, capacity: int) -> Tuple[int, int]:
    """Replay a read-modify-write scatter stream through an LRU cache.

    Returns (misses, dirty writebacks incl. final flush).  This is the
    scalar reference model; the profiling hot path uses the bit-identical
    vectorized :func:`repro.runtime.traffic.lru_scatter_replay`
    (equivalence is enforced by ``tests/test_batch_equivalence.py``).
    """
    cache: "OrderedDict[int, bool]" = OrderedDict()
    misses = 0
    writebacks = 0
    for line in lines.tolist():
        if line in cache:
            cache.move_to_end(line)
        else:
            misses += 1
            if len(cache) >= capacity:
                cache.popitem(last=False)
                writebacks += 1  # RMW data is always dirty
            cache[line] = True
    writebacks += len(cache)  # final flush of dirty lines
    return misses, writebacks


def phi_coalesce_oracle(dsts: np.ndarray, values: np.ndarray,
                        dst_value_bytes: int, capacity_lines: int
                        ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Replay PHI's in-cache update coalescing, one update at a time.

    Updates to the same destination line coalesce while the line stays
    resident; evictions (and the final flush) spill the line's distinct
    updates.  Returns (spilled dst ids, spilled values, spilled lines).
    Scalar reference for
    :func:`repro.runtime.traffic.phi_coalesce_replay`.
    """
    per_line = max(1, LINE_BYTES // max(4, dst_value_bytes + 4))
    cache: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
    spilled_ids: List[int] = []
    spilled_vals: List[int] = []
    spilled_lines = 0
    has_values = values.size == dsts.size
    vals_iter = values if has_values else np.zeros(dsts.size,
                                                   dtype=np.uint64)
    vbits = np.ascontiguousarray(vals_iter).view(
        np.dtype(f"u{vals_iter.dtype.itemsize}")).astype(np.uint64)
    for dst, val in zip(dsts.tolist(), vbits.tolist()):
        line = dst // per_line
        bucket = cache.get(line)
        if bucket is None:
            if len(cache) >= capacity_lines:
                _evicted, contents = cache.popitem(last=False)
                spilled_lines += 1
                spilled_ids.extend(contents.keys())
                spilled_vals.extend(contents.values())
            bucket = {}
            cache[line] = bucket
        else:
            cache.move_to_end(line)
        bucket[dst] = val  # coalesce: commutative update aggregates
    for _line, contents in cache.items():
        spilled_lines += 1
        spilled_ids.extend(contents.keys())
        spilled_vals.extend(contents.values())
    return (np.array(spilled_ids, dtype=np.uint32),
            np.array(spilled_vals, dtype=np.uint64),
            spilled_lines)


# --------------------------------------------------------------------------
# Scalar codec size models (the model's semantics, element by element)
# --------------------------------------------------------------------------

def expand_id_scalar(vid: int, scale: int, block: int = DEFAULT_BLOCK,
                     local_stride: int = DEFAULT_LOCAL_STRIDE) -> int:
    """One-id mirror of :func:`repro.graph.idspace.expand_ids`."""
    if scale <= 1:
        return vid
    stride = min(local_stride, scale)
    blk, off = divmod(vid, block)
    noise = ((vid * int(_HASH_MULT)) & _U64_MASK) % stride
    return blk * block * scale + off * stride + noise


def _varint_bucket(value: int) -> int:
    """Scalar mirror of ``repro.compression.delta._varint_sizes``."""
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    return 9


def delta_group_size_scalar(group: List[int]) -> int:
    """Model delta size of one group: wrapped zigzags, walked in Python.

    Mirrors ``traffic._delta_sizes_grouped`` for a single group —
    including the uint64 wrap of the first element's zigzag.
    """
    first = group[0]
    total = _varint_bucket((first << 1) & _U64_MASK)
    prev = first
    for current in group[1:]:
        total += _varint_bucket(_zigzag_int(_wrapped_delta(current, prev)))
        prev = current
    return total


def rows_compressed_bytes_scalar(ids: np.ndarray, degrees: np.ndarray,
                                 id_scale: int) -> int:
    """Per-row scalar mirror of ``traffic.rows_compressed_bytes_from``."""
    total = 0
    pos = 0
    for deg in degrees.tolist():
        if deg <= 0:
            continue
        row = [expand_id_scalar(int(v), id_scale)
               for v in ids[pos:pos + deg].tolist()]
        pos += deg
        total += min(delta_group_size_scalar(row), deg * 4 + 1)
    return total


def chunked_ids_values_compressed_scalar(ids: np.ndarray,
                                         values: np.ndarray,
                                         id_scale: int, sort: bool,
                                         chunk: int = CHUNK) -> int:
    """Chunk-by-chunk mirror of
    ``traffic.chunked_ids_values_compressed``."""
    n = ids.size
    if n == 0:
        return 0
    pad = (-n) % chunk
    ids64 = [expand_id_scalar(int(v), id_scale) for v in ids.tolist()]
    ids64 += [ids64[-1]] * pad
    has_vals = values.size > 0
    if has_vals:
        vals = np.ascontiguousarray(values)
        vbits = vals.view(np.dtype(f"u{vals.dtype.itemsize}"))
        vlist = [int(v) for v in vbits.tolist()]
        vlist += [vlist[-1]] * pad
        vdtype = vbits.dtype
        vwidth = 8 * vbits.dtype.itemsize
        vitem = vbits.dtype.itemsize
        codec = BpcCodec()
    total = 0
    bpc_total = 0
    delta_total = 0
    for start in range(0, len(ids64), chunk):
        id_chunk = ids64[start:start + chunk]
        val_chunk = vlist[start:start + chunk] if has_vals else []
        if sort:
            order = sorted(range(len(id_chunk)),
                           key=lambda i: id_chunk[i])  # stable
            id_chunk = [id_chunk[i] for i in order]
            if has_vals:
                val_chunk = [val_chunk[i] for i in order]
        total += min(delta_group_size_scalar(id_chunk), chunk * 4 + 1)
        if has_vals:
            arr = np.array(val_chunk, dtype=np.uint64).astype(vdtype)
            bpc_total += len(codec._encode_chunk(arr, vwidth))
            delta_total += min(delta_group_size_scalar(val_chunk),
                               chunk * vitem + 1)
    if has_vals:
        total += min(bpc_total, delta_total)
    if pad:
        total = int(total * (n / (n + pad)))
    return total


def array_compressed_bytes_scalar(values: Optional[np.ndarray],
                                  chunk: int = CHUNK) -> int:
    """Chunk-by-chunk mirror of ``traffic.array_compressed_bytes``."""
    if values is None or values.size == 0:
        return 0
    vbits = np.ascontiguousarray(values).view(
        np.dtype(f"u{values.dtype.itemsize}"))
    item = vbits.dtype.itemsize
    width = 8 * item
    codec = BpcCodec()
    delta_total = 0
    bpc_total = 0
    elems = [int(v) for v in vbits.tolist()]
    for start in range(0, len(elems), chunk):
        group = elems[start:start + chunk]
        delta_total += min(delta_group_size_scalar(group),
                           len(group) * item + 1)
        bpc_total += len(codec._encode_chunk(vbits[start:start + chunk],
                                             width))
    raw = vbits.size * item
    return min(delta_total, bpc_total, raw)


# --------------------------------------------------------------------------
# The full scalar-oracle profiler
# --------------------------------------------------------------------------

def profile_iteration_scalar(workload, iteration, cfg):
    """Per-iteration profile built entirely from the scalar oracles.

    Field-for-field equal to
    :func:`repro.runtime.traffic.profile_iteration`; the randomized
    equivalence suite (``tests/test_traffic_equivalence.py``) holds the
    two bit-identical across hostile configs.  Never used on the hot
    path — this exists to be slow and obviously correct.
    """
    from repro.runtime.traffic import (
        IterationProfile,
        _iteration_imbalance,
        _transpose_of,
    )
    graph = workload.graph
    offsets = graph.offsets
    degrees = graph.out_degrees()
    num_vertices = graph.num_vertices
    sources = iteration.sources
    num_edges = sum(int(degrees[s]) for s in sources.tolist())
    all_active = sources.size >= num_vertices

    # --- adjacency -------------------------------------------------------
    if all_active:
        offsets_bytes = ceil_lines((num_vertices + 1) * 8)
    else:
        offsets_bytes = scattered_line_bytes_scalar(sources, 8)
    neigh_bytes = row_line_bytes_scalar(offsets, num_vertices,
                                        graph.num_edges, sources)
    dsts = gather_row_stream_scalar(offsets, graph.neighbors, degrees,
                                    sources, num_vertices)
    neigh_comp = rows_compressed_bytes_scalar(dsts, degrees[sources],
                                              cfg.id_scale)
    neigh_bytes_compressed = min(ceil_lines(neigh_comp), neigh_bytes)

    edge_values = workload.extras.get("edge_values")
    if edge_values is not None:
        edge_value_bytes = ceil_lines(num_edges
                                      * edge_values.dtype.itemsize)
        edge_value_bytes_compressed = ceil_lines(
            array_compressed_bytes_scalar(edge_values))
    else:
        edge_value_bytes = 0
        edge_value_bytes_compressed = 0

    # --- source vertex data ----------------------------------------------
    svb = workload.src_value_bytes
    if svb == 0:
        src_bytes = src_bytes_compressed = 0
    elif all_active:
        src_bytes = ceil_lines(num_vertices * svb)
        src_bytes_compressed = min(
            ceil_lines(array_compressed_bytes_scalar(
                iteration.src_values)),
            src_bytes)
    else:
        src_bytes = scattered_line_bytes_scalar(sources, svb)
        # Scattered accesses cannot use compressed layouts (Sec II-C).
        src_bytes_compressed = src_bytes

    # --- frontier --------------------------------------------------------
    if workload.frontier_based:
        frontier_raw = ceil_lines(sources.size * 4) * 2  # write + read
        frontier_comp = chunked_ids_values_compressed_scalar(
            sources.astype(np.uint32), np.empty(0, dtype=np.uint32),
            cfg.id_scale, sort=cfg.sort_updates)
        frontier_bytes = frontier_raw
        frontier_bytes_compressed = min(2 * ceil_lines(frontier_comp),
                                        frontier_raw)
    else:
        frontier_bytes = frontier_bytes_compressed = 0

    # --- Push destination scatter ----------------------------------------
    dvb = workload.dst_value_bytes
    dst_lines = push_scatter_lines_scalar(dsts, dvb)
    misses, writebacks = lru_scatter_oracle(dst_lines, cfg.llc_lines)

    # --- Update Batching -------------------------------------------------
    vpb = cfg.vertices_per_bin(dvb)
    num_bins = max(1, -(-num_vertices // vpb))
    update_bytes = ceil_lines(num_edges * workload.update_bytes)
    upd_vals = iteration.update_values
    sorted_ids, sorted_vals, touched_bins = ub_bin_stream_scalar(
        dsts, upd_vals, vpb)
    update_bytes_compressed_unsorted = ceil_lines(
        chunked_ids_values_compressed_scalar(
            sorted_ids, sorted_vals, cfg.id_scale, sort=False))
    if cfg.sort_updates:
        update_bytes_compressed = min(
            ceil_lines(chunked_ids_values_compressed_scalar(
                sorted_ids, sorted_vals, cfg.id_scale, sort=True)),
            update_bytes_compressed_unsorted)
    else:
        update_bytes_compressed = update_bytes_compressed_unsorted
    ub_dest_raw = min(ceil_lines(num_vertices * dvb),
                      touched_bins * vpb * dvb)
    ub_dest_bytes = 2 * ub_dest_raw  # read + write per pass
    dst_comp = array_compressed_bytes_scalar(workload.dst_values)
    dst_total_raw = max(1, num_vertices * dvb)
    ub_dest_bytes_compressed = int(ub_dest_bytes
                                   * min(1.0, dst_comp / dst_total_raw))

    # --- PHI -------------------------------------------------------------
    spilled_ids, spilled_vals, _lines = phi_coalesce_oracle(
        dsts.astype(np.int64),
        upd_vals if upd_vals.size == dsts.size else np.empty(0),
        dvb, cfg.llc_lines)
    phi_update_bytes = 2 * ceil_lines(spilled_ids.size
                                      * workload.update_bytes)
    if upd_vals.size == dsts.size and upd_vals.dtype.itemsize <= 8 \
            and spilled_vals.size:
        spill_payload = spilled_vals.astype(
            np.dtype(f"u{upd_vals.dtype.itemsize}") if
            upd_vals.dtype.itemsize in (4, 8) else np.uint64)
    else:
        spill_payload = np.empty(0, dtype=np.uint32)
    phi_comp = chunked_ids_values_compressed_scalar(
        spilled_ids, spill_payload, cfg.id_scale, sort=cfg.sort_updates)
    phi_update_bytes_compressed = min(2 * ceil_lines(phi_comp),
                                      phi_update_bytes)

    # --- Pull (destination-stationary) gather ----------------------------
    pull_gather_misses = 0
    pull_gather_read_bytes = 0
    pull_adj_bytes = 0
    pull_adj_bytes_comp = 0
    if all_active and svb:
        transposed = _transpose_of(graph)
        every = np.arange(transposed.num_vertices)
        gather_lines = pull_gather_lines_scalar(transposed.neighbors, svb)
        pull_gather_misses, _wb = lru_scatter_oracle(gather_lines,
                                                     cfg.llc_lines)
        pull_gather_read_bytes = pull_gather_misses * LINE_BYTES
        pull_adj_bytes = row_line_bytes_scalar(
            transposed.offsets, transposed.num_vertices,
            transposed.num_edges, every)
        pull_adj_bytes_comp = min(
            ceil_lines(rows_compressed_bytes_scalar(
                transposed.neighbors, transposed.out_degrees(),
                cfg.id_scale)),
            pull_adj_bytes)

    return IterationProfile(
        weight=iteration.weight,
        num_sources=int(sources.size),
        num_edges=num_edges,
        offsets_bytes=offsets_bytes,
        neigh_bytes=neigh_bytes,
        neigh_bytes_compressed=neigh_bytes_compressed,
        edge_value_bytes=edge_value_bytes,
        edge_value_bytes_compressed=edge_value_bytes_compressed,
        src_bytes=src_bytes,
        src_bytes_compressed=src_bytes_compressed,
        frontier_bytes=frontier_bytes,
        frontier_bytes_compressed=frontier_bytes_compressed,
        push_dest_read_bytes=misses * LINE_BYTES,
        push_dest_write_bytes=writebacks * LINE_BYTES,
        push_dest_misses=misses,
        num_bins=num_bins,
        update_bytes=update_bytes,
        update_bytes_compressed=update_bytes_compressed,
        update_bytes_compressed_unsorted=update_bytes_compressed_unsorted,
        ub_dest_bytes=ub_dest_bytes,
        ub_dest_bytes_compressed=ub_dest_bytes_compressed,
        phi_spilled_updates=int(spilled_ids.size),
        phi_update_bytes=phi_update_bytes,
        phi_update_bytes_compressed=phi_update_bytes_compressed,
        pull_gather_misses=pull_gather_misses,
        pull_gather_read_bytes=pull_gather_read_bytes,
        pull_adj_bytes=pull_adj_bytes,
        pull_adj_bytes_compressed=pull_adj_bytes_comp,
        load_imbalance=_iteration_imbalance(degrees[sources],
                                            cfg.system.num_cores),
    )
