"""Unit tests for the job orchestration subsystem (repro.jobs)."""

import json
import os

import pytest

from repro.config import SystemConfig
from repro.jobs import (
    JobExecutionError,
    JobExecutor,
    JobRunner,
    NullCache,
    ResultCache,
    RunRequest,
    TelemetryWriter,
    build_job_graph,
    canonical_params,
    code_salt,
    experiment_requests,
    job_fingerprint,
    latest_telemetry,
    summarize,
)

SCALE = 65536


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------

class TestJobModel:
    def test_canonical_params_normalizes_sets(self):
        a = canonical_params({"parts": frozenset({"b", "a"})})
        b = canonical_params({"parts": frozenset({"a", "b"})})
        assert a == b == (("parts", ("a", "b")),)

    def test_params_roundtrip_to_kwargs(self):
        from repro.jobs.model import params_to_kwargs
        params = canonical_params({"parts": frozenset({"x"}),
                                   "decoupled_only": True})
        kwargs = params_to_kwargs(params)
        assert kwargs == {"parts": frozenset({"x"}),
                          "decoupled_only": True}

    def test_graph_shares_profile_jobs(self):
        requests = [RunRequest("pr", s, "arb") for s in ("push", "phi")]
        requests += [RunRequest("pr", "push", "ukl")]
        graph = build_job_graph(requests)
        profiles = graph.profile_jobs
        assert len(profiles) == 2  # arb and ukl share nothing
        assert len(graph.price_jobs) == 3
        groups = dict((p.job_id, jobs) for p, jobs in graph.groups())
        assert len(groups["profile:pr/arb/none"]) == 2

    def test_duplicate_requests_deduplicate(self):
        request = RunRequest("pr", "push", "arb")
        graph = build_job_graph([request, request])
        assert len(graph.price_jobs) == 1

    def test_price_jobs_depend_on_their_profile(self):
        graph = build_job_graph([RunRequest("cc", "ub", "twi", "dfs")])
        (job,) = graph.price_jobs
        assert job.deps == ("profile:cc/twi/dfs",)

    def test_topological_orders_dependencies_first(self):
        requests = [RunRequest("pr", s, d)
                    for d in ("arb", "ukl") for s in ("push", "phi")]
        order = [j.job_id for j in
                 build_job_graph(requests).topological()]
        for job in build_job_graph(requests).price_jobs:
            assert order.index(job.deps[0]) < order.index(job.job_id)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_calls(self):
        graph = build_job_graph([RunRequest("pr", "push", "arb")])
        (job,) = graph.price_jobs
        system = SystemConfig().scaled(SCALE)
        assert job_fingerprint(job, SCALE, system) == \
            job_fingerprint(job, SCALE, system)

    def test_sensitive_to_identity_and_config(self):
        system = SystemConfig().scaled(SCALE)
        base = build_job_graph([RunRequest("pr", "push", "arb")]
                               ).price_jobs[0]
        keys = {job_fingerprint(base, SCALE, system)}
        other = build_job_graph([RunRequest("pr", "phi", "arb")]
                                ).price_jobs[0]
        keys.add(job_fingerprint(other, SCALE, system))
        keys.add(job_fingerprint(base, SCALE // 2,
                                 SystemConfig().scaled(SCALE // 2)))
        params = build_job_graph(
            [RunRequest("pr", "push", "arb", "none",
                        canonical_params({"decoupled_only": True}))]
        ).price_jobs[0]
        keys.add(job_fingerprint(params, SCALE, system))
        assert len(keys) == 4

    def test_code_salt_is_short_hex(self):
        salt = code_salt()
        assert len(salt) == 16
        int(salt, 16)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1.5})
        assert cache.get("ab" * 32) == {"x": 1.5}
        assert cache.stats()["entries"] == 1
        assert cache.keys() == ["ab" * 32]

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("cd" * 32, [1, 2])
        path = cache._path("cd" * 32)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("cd" * 32) is None
        assert not os.path.exists(path)

    def test_corruption_is_reported_not_silent(self, tmp_path):
        """Regression: dropped entries must reach the error channel."""
        messages = []
        cache = ResultCache(str(tmp_path), on_error=messages.append)
        cache.put("cd" * 32, [1, 2])
        with open(cache._path("cd" * 32), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("cd" * 32) is None
        assert len(messages) == 1
        assert messages[0].startswith("cache: dropping unreadable")
        assert "cd" * 32 in messages[0]

    def test_executor_wires_cache_error_channel(self, tmp_path):
        from repro.jobs.executor import JobExecutor
        seen = []
        cache = ResultCache(str(tmp_path))
        JobExecutor(scale=1 << 10, cache=cache, progress=seen.append)
        assert cache.on_error is not None
        cache.on_error("hello")
        assert seen == ["hello"]

    def test_executor_keeps_existing_error_channel(self, tmp_path):
        from repro.jobs.executor import JobExecutor
        mine = []
        handler = mine.append
        cache = ResultCache(str(tmp_path), on_error=handler)
        JobExecutor(scale=1 << 10, cache=cache, progress=lambda _m: None)
        assert cache.on_error is handler
        cache.on_error("kept")
        assert mine == ["kept"]

    def test_corruption_counts_in_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.stats()["corrupt_dropped"] == 0
        cache.put("cd" * 32, [1, 2])
        with open(cache._path("cd" * 32), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("cd" * 32) is None
        assert cache.corrupt_dropped == 1
        assert cache.stats()["corrupt_dropped"] == 1

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        """A torn write (empty file) is a miss, dropped and counted."""
        cache = ResultCache(str(tmp_path))
        cache.put("ef" * 32, {"x": 1})
        with open(cache._path("ef" * 32), "wb"):
            pass  # truncate to zero bytes
        assert cache.get("ef" * 32) is None
        assert not os.path.exists(cache._path("ef" * 32))
        assert cache.stats()["corrupt_dropped"] == 1
        # The slot is reusable after the drop.
        cache.put("ef" * 32, {"x": 2})
        assert cache.get("ef" * 32) == {"x": 2}

    def test_prune_keeps_live_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("aa" * 32, 1)
        cache.put("bb" * 32, 2)
        kept, removed = cache.prune(["aa" * 32])
        assert (kept, removed) == (1, 1)
        assert cache.get("aa" * 32) == 1

    def test_null_cache_stores_nothing(self):
        cache = NullCache()
        cache.put("x", 1)
        assert cache.get("x") is None
        assert not cache.enabled
        assert cache.stats()["corrupt_dropped"] == 0


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------

class TestTelemetry:
    def test_jsonl_records_and_summary(self, tmp_path):
        from repro.jobs import JobRecord, render_summary
        path = str(tmp_path / "run.jsonl")
        writer = TelemetryWriter(path=path)
        writer.start(jobs=2, requests=3, cache_root=None)
        writer.record(JobRecord(job_id="profile:a", kind="profile",
                                status="miss", wall_s=1.0,
                                worker_pid=11))
        writer.record(JobRecord(job_id="price:a/x", kind="price",
                                status="hit"))
        writer.record(JobRecord(job_id="price:a/y", kind="price",
                                status="miss", wall_s=0.5, retries=1,
                                worker_pid=11))
        writer.finish()
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert [line["event"] for line in lines] == \
            ["run_start", "job", "job", "job", "run_end"]
        summary = summarize(path)
        assert summary["jobs"] == 3
        assert summary["by_status"] == {"hit": 1, "miss": 2,
                                        "skipped": 0, "failed": 0}
        # Run duration comes from the monotonic clock: it can never be
        # negative, even if the wall clock were stepped mid-run.
        assert float(lines[-1]["wall_s"]) >= 0.0
        assert summary["retries"] == 1
        assert summary["workers"] == 1
        assert summary["hit_rate"] == pytest.approx(1 / 3)
        text = render_summary(summary)
        assert "hit=1" in text and "profile:a" in text

    def test_latest_telemetry_picks_newest(self, tmp_path):
        root = str(tmp_path)
        assert latest_telemetry(root) is None
        tdir = tmp_path / "telemetry"
        tdir.mkdir()
        old = tdir / "run-1.jsonl"
        new = tdir / "run-2.jsonl"
        old.write_text("{}\n")
        new.write_text("{}\n")
        os.utime(old, (1, 1))
        assert latest_telemetry(root) == str(new)


# ---------------------------------------------------------------------------
# Executor + orchestrator
# ---------------------------------------------------------------------------

REQUESTS = [RunRequest("dc", scheme, "arb") for scheme in
            ("push", "phi", "phi+spzip")]


class TestExecutor:
    def test_serial_executes_and_caches(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        telemetry = TelemetryWriter(path=None)
        executor = JobExecutor(scale=SCALE, jobs=1, cache=cache,
                               telemetry=telemetry)
        results = executor.run(list(REQUESTS))
        assert list(results) == REQUESTS  # deterministic order
        assert telemetry.cache_misses == len(REQUESTS) + 1  # + profile
        # One cell result per request, plus the staged pipeline's
        # artifacts: one stream/replay/compress for the shared profile
        # and one timing entry per cell.
        assert cache.stats()["entries"] == 2 * len(REQUESTS) + 3

    def test_warm_cache_skips_profiling(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        JobExecutor(scale=SCALE, jobs=1, cache=cache).run(
            list(REQUESTS))
        telemetry = TelemetryWriter(path=None)
        executor = JobExecutor(scale=SCALE, jobs=1, cache=cache,
                               telemetry=telemetry)
        warm = executor.run(list(REQUESTS))
        assert telemetry.cache_hits == len(REQUESTS)
        assert telemetry.cache_misses == 0
        statuses = {r.job_id: r.status for r in telemetry.records}
        assert statuses["profile:dc/arb/none"] == "skipped"
        cold = JobExecutor(scale=SCALE, jobs=1).run(list(REQUESTS))
        assert warm == cold

    def test_matches_plain_runner(self):
        from repro.sim.runner import Runner
        results = JobExecutor(scale=SCALE, jobs=1).run(list(REQUESTS))
        runner = Runner(scale=SCALE)
        for request, metrics in results.items():
            assert metrics == runner.run(request.app, request.scheme,
                                         request.dataset,
                                         request.preprocessing)

    def test_failure_raises_after_retries(self):
        executor = JobExecutor(scale=SCALE, jobs=1, retries=2)
        bad = [RunRequest("dc", "no-such-scheme", "arb")]
        with pytest.raises(JobExecutionError):
            executor.run(bad)
        statuses = [r for r in executor.telemetry.records
                    if r.status == "failed"]
        assert statuses and all(r.retries == 2 for r in statuses)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            JobExecutor(scale=SCALE, jobs=0)


class TestJobRunner:
    def test_prefetch_then_run_hits_memory(self, tmp_path):
        runner = JobRunner(scale=SCALE, jobs=1,
                           cache_dir=str(tmp_path))
        assert runner.prefetch(REQUESTS) == len(REQUESTS)
        metrics = runner.run("dc", "phi", "arb")
        assert metrics.scheme == "phi"
        summary = summarize(latest_telemetry(str(tmp_path)))
        assert summary["by_status"]["miss"] == len(REQUESTS) + 1

    def test_unplanned_run_falls_back_and_caches(self, tmp_path):
        runner = JobRunner(scale=SCALE, jobs=1,
                           cache_dir=str(tmp_path))
        first = runner.run("dc", "ub", "arb")
        fresh = JobRunner(scale=SCALE, jobs=1,
                          cache_dir=str(tmp_path))
        assert fresh.run("dc", "ub", "arb") == first
        records = fresh._telemetry.records
        assert [r.status for r in records] == ["hit"]

    def test_is_a_drop_in_runner(self):
        runner = JobRunner(scale=SCALE)
        workload = runner.workload("dc", "arb")
        assert runner.profiles("dc", "arb")
        assert runner.config_for(workload) is \
            runner.config_for(workload)


class TestPlans:
    def test_fig07_plan_covers_all_schemes(self):
        from repro.runtime.strategies import SCHEMES
        requests = experiment_requests(["fig07"])
        assert {r.scheme for r in requests} == set(SCHEMES)
        assert all(r.profile_key == ("bfs", "ukl", "none")
                   for r in requests)

    def test_plans_deduplicate_across_experiments(self):
        merged = experiment_requests(["fig15a", "fig15b"])
        assert len(merged) == len(set(merged))
        assert len(merged) == len(experiment_requests(["fig15a"]))

    def test_profile_only_experiments_have_empty_plans(self):
        assert experiment_requests(["table1", "fig21", "sorting"]) == []

    def test_fig19_plan_folds_parts_into_scheme(self):
        requests = experiment_requests(["fig19"])
        parted = [r for r in requests if "[parts=" in r.scheme]
        assert parted
        # Ablations are scheme identities now, not side-channel params.
        assert all(not r.params for r in requests)
        assert any(r.scheme == "phi+spzip[parts=adjacency]"
                   for r in parted)

    def test_fig20_plan_folds_decoupled_into_scheme(self):
        requests = experiment_requests(["fig20"])
        assert any(r.scheme == "phi+spzip[decoupled]" for r in requests)
        assert all(not r.params for r in requests)
