"""Experiment plans: which simulations each registered experiment needs.

Mirrors the run calls made by :mod:`repro.harness.experiments` so the
orchestrator can prefetch an experiment's whole cross-product through
the job graph before the experiment function renders it.  The mapping
is best-effort by design: a request missing from a plan is not an
error — the experiment simply computes that run in-process through the
orchestrator's memoized fallback — so plans only ever *accelerate*.

Profile-only experiments (table3, fig21, sorting) have empty plans:
their work has no per-scheme pricing step to parallelize.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.jobs.model import RunRequest, canonical_request


def _requests(apps: Sequence[str], schemes: Sequence[str],
              preprocessing: str, **kwargs) -> List[RunRequest]:
    from repro.harness.experiments import _inputs_for
    return [canonical_request(app, scheme, dataset, preprocessing,
                              **kwargs)
            for app in apps
            for dataset in _inputs_for(app)
            for scheme in schemes]


def _fig15(preprocessing: str) -> List[RunRequest]:
    from repro.harness.experiments import ALL_APPS
    from repro.schemes import scheme_names
    return _requests(ALL_APPS, scheme_names("paper"), preprocessing)


def _fig16(preprocessing: str) -> List[RunRequest]:
    from repro.harness.experiments import GRAPH_APPS
    from repro.schemes import scheme_names
    return _requests(GRAPH_APPS, scheme_names("paper"), preprocessing)


def _fig07(preprocessing: str) -> List[RunRequest]:
    from repro.schemes import scheme_names
    return [RunRequest("bfs", scheme, "ukl", preprocessing)
            for scheme in scheme_names("paper")]


def _fig18() -> List[RunRequest]:
    from repro.harness.experiments import GRAPH_APPS, PREPROCESSINGS
    requests = [RunRequest(app, "phi", "ukl", "none")
                for app in GRAPH_APPS]
    for preprocessing in PREPROCESSINGS:
        for scheme in ("phi", "phi+spzip"):
            requests += [RunRequest(app, scheme, "ukl", preprocessing)
                         for app in GRAPH_APPS]
    return requests


def _fig19(preprocessing: str) -> List[RunRequest]:
    from repro.harness.experiments import GRAPH_APPS
    requests = _requests(GRAPH_APPS, ("phi",), preprocessing)
    for parts in (frozenset({"adjacency"}),
                  frozenset({"adjacency", "updates"}),
                  frozenset({"adjacency", "updates", "vertex"})):
        requests += _requests(GRAPH_APPS, ("phi+spzip",), preprocessing,
                              parts=parts)
    return requests


def _fig20() -> List[RunRequest]:
    from repro.harness.experiments import GRAPH_APPS
    requests: List[RunRequest] = []
    for preprocessing in ("none", "dfs"):
        requests += _requests(GRAPH_APPS, ("phi", "phi+spzip"),
                              preprocessing)
        requests += _requests(GRAPH_APPS, ("phi+spzip",), preprocessing,
                              decoupled_only=True)
    return requests


def _fig22(preprocessing: str) -> List[RunRequest]:
    from repro.harness.experiments import ALL_APPS
    return _requests(ALL_APPS, ("push", "push+cmh", "ub", "ub+cmh"),
                     preprocessing)


#: Experiment id -> plan builder.  Rebuilt lazily to avoid import
#: cycles with the harness.
def _plan_builders() -> Dict[str, object]:
    return {
        "fig07": lambda: _fig07("none"),
        "fig08": lambda: _fig07("dfs"),
        "fig15a": lambda: _fig15("none"),
        "fig15b": lambda: _fig15("none"),
        "fig15c": lambda: _fig15("dfs"),
        "fig15d": lambda: _fig15("dfs"),
        "fig16": lambda: _fig16("none"),
        "fig17": lambda: _fig16("dfs"),
        "fig18": _fig18,
        "fig19": lambda: _fig19("none"),
        "fig19-preprocessed": lambda: _fig19("dfs"),
        "fig20": _fig20,
        "fig22": lambda: _fig22("none"),
        "fig22-preprocessed": lambda: _fig22("dfs"),
    }


def experiment_requests(
        experiment_ids: Iterable[str]) -> List[RunRequest]:
    """Deduplicated requests for a set of experiments, stable order."""
    builders = _plan_builders()
    seen = {}
    for experiment_id in experiment_ids:
        builder = builders.get(experiment_id)
        if builder is None:
            continue
        for request in builder():
            seen.setdefault(request, None)
    return list(seen)
