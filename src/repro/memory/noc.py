"""On-chip network model: 4x4 mesh, X-Y routing, 128-bit flits (Table II).

The NoC matters for SpZip in two places: fetcher requests travel from a
core tile to an LLC bank, and PHI+SpZip routes evicted update lines to the
compressor "in the same chip tile" (Sec IV), i.e. with zero-hop cost.  The
model provides hop counts, per-message latency, and aggregate flit
accounting so system-level latency constants are grounded rather than
guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config import NocConfig


@dataclass
class NocStats:
    messages: int = 0
    flits: int = 0
    hop_flits: int = 0


class MeshNoc:
    """X-Y routed mesh with pipelined single-cycle routers."""

    def __init__(self, config: NocConfig) -> None:
        self.config = config
        self.stats = NocStats()

    @property
    def num_tiles(self) -> int:
        return self.config.mesh_width * self.config.mesh_height

    def coords(self, tile: int) -> Tuple[int, int]:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range")
        return tile % self.config.mesh_width, tile // self.config.mesh_width

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance under X-Y routing."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def average_hops(self) -> float:
        """Mean hop count over all (src, dst) pairs, dst uniform (LLC
        banks are address-hashed across all tiles)."""
        total = sum(self.hops(s, d)
                    for s in range(self.num_tiles)
                    for d in range(self.num_tiles))
        return total / (self.num_tiles ** 2)

    def flits_for(self, payload_bytes: int) -> int:
        """Number of flits for a message (1 head flit minimum)."""
        return max(1, -(-payload_bytes // self.config.flit_bytes))

    def message_latency(self, src: int, dst: int,
                        payload_bytes: int) -> int:
        """Cycles for one message: per-hop router+link plus serialization."""
        hops = self.hops(src, dst)
        per_hop = (self.config.router_latency_cycles
                   + self.config.link_latency_cycles)
        return hops * per_hop + self.flits_for(payload_bytes) - 1

    def send(self, src: int, dst: int, payload_bytes: int) -> int:
        """Account a message; returns its latency in cycles."""
        flits = self.flits_for(payload_bytes)
        self.stats.messages += 1
        self.stats.flits += flits
        self.stats.hop_flits += flits * self.hops(src, dst)
        return self.message_latency(src, dst, payload_bytes)

    def average_llc_latency(self, bank_latency: int) -> float:
        """Mean round-trip cycles from a core to a hashed LLC bank."""
        hops = self.average_hops()
        per_hop = (self.config.router_latency_cycles
                   + self.config.link_latency_cycles)
        return 2 * hops * per_hop + bank_latency
