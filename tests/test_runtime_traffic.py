"""Tests for the per-iteration traffic profiler."""

import numpy as np

from repro.apps import pagerank, bfs as bfs_app
from repro.config import SystemConfig
from repro.graph import community_graph
from repro.runtime import (
    ModelConfig,
    chunked_ids_values_compressed,
    gather_rows,
    profile_iteration,
    profile_workload,
    rows_compressed_bytes,
)
from repro.runtime.traffic import _lru_scatter, _phi_coalesce
from repro.compression import DeltaCodec


def cfg(llc_kb=16):
    from dataclasses import replace
    system = SystemConfig().scaled(4096)
    system = replace(system, llc=replace(system.llc,
                                         size_bytes=llc_kb * 1024))
    return ModelConfig(system=system, id_scale=4096)


class TestGatherRows:
    def test_all_active_is_neighbors(self):
        g = community_graph(100, 600, seed_stream="traffic-1")
        out = gather_rows(g, np.arange(100))
        assert np.array_equal(out, g.neighbors)

    def test_subset_matches_row_concat(self):
        g = community_graph(100, 600, seed_stream="traffic-2")
        subset = np.array([3, 17, 42], dtype=np.int64)
        out = gather_rows(g, subset)
        expected = np.concatenate([g.row(v) for v in subset])
        assert np.array_equal(out, expected)

    def test_empty_sources(self):
        g = community_graph(50, 300, seed_stream="traffic-3")
        assert gather_rows(g, np.empty(0, dtype=np.int64)).size == 0


class TestCompressedSizes:
    def test_rows_compressed_matches_codec(self):
        """The grouped vectorized path must equal per-row DeltaCodec."""
        g = community_graph(120, 900, seed_stream="traffic-4")
        from repro.graph.idspace import expand_ids
        codec = DeltaCodec()
        expected = 0
        for v in range(g.num_vertices):
            row = expand_ids(g.row(v), 4096).astype(np.uint64)
            if row.size:
                expected += min(codec.encoded_size(row), 4 * row.size + 1)
        got = rows_compressed_bytes(g, np.arange(120), 4096)
        assert got == expected

    def test_chunked_updates_sorting_helps(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 3000, 640, dtype=np.uint64).astype(np.uint32)
        vals = np.zeros(640, dtype=np.uint32)
        plain = chunked_ids_values_compressed(ids, vals, 4096, sort=False)
        sorted_ = chunked_ids_values_compressed(ids, vals, 4096, sort=True)
        assert sorted_ < plain

    def test_chunked_updates_empty(self):
        assert chunked_ids_values_compressed(
            np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint32),
            4096, sort=True) == 0

    def test_constant_payload_compresses_heavily(self):
        """DC-style: constant payload values nearly vanish."""
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 3000, 320, dtype=np.uint64).astype(np.uint32)
        ones = np.ones(320, dtype=np.uint32)
        randv = rng.integers(0, 2 ** 32, 320,
                             dtype=np.uint64).astype(np.uint32)
        small = chunked_ids_values_compressed(ids, ones, 4096, sort=True)
        big = chunked_ids_values_compressed(ids, randv, 4096, sort=True)
        assert small < 0.6 * big


class TestCacheReplays:
    def test_lru_scatter_counts(self):
        lines = np.array([0, 1, 0, 2, 3, 0], dtype=np.int64)
        misses, writebacks = _lru_scatter(lines, capacity=2)
        # 0 miss, 1 miss, 0 hit, 2 miss (evict 1), 3 miss (evict 0),
        # 0 miss (evict 2): 5 misses; evictions 3 + final flush 2.
        assert misses == 5
        assert writebacks == 5

    def test_lru_scatter_all_hits_when_fitting(self):
        lines = np.tile(np.arange(4, dtype=np.int64), 10)
        misses, writebacks = _lru_scatter(lines, capacity=8)
        assert misses == 4
        assert writebacks == 4  # final flush only

    def test_phi_coalesces_same_destination(self):
        dsts = np.array([5, 5, 5, 5], dtype=np.int64)
        vals = np.arange(4, dtype=np.uint32)
        ids, out_vals, lines = _phi_coalesce(dsts, vals, 4, 16)
        assert ids.tolist() == [5]       # four updates coalesced to one
        assert lines == 1

    def test_phi_distinct_dsts_in_one_line_all_spill(self):
        dsts = np.array([0, 1, 2, 3], dtype=np.int64)
        ids, _vals, lines = _phi_coalesce(dsts, np.arange(4, dtype=np.uint32),
                                          4, 16)
        assert sorted(ids.tolist()) == [0, 1, 2, 3]
        assert lines == 1  # all share a line (16 x 4B per line)

    def test_phi_eviction_spills_midstream(self):
        # Capacity 1 line: alternating far-apart lines evict each other.
        dsts = np.array([0, 100, 0, 100], dtype=np.int64)
        ids, _vals, lines = _phi_coalesce(dsts, np.arange(4, dtype=np.uint32),
                                          4, 1)
        assert lines == 4
        assert ids.size == 4


class TestIterationProfile:
    def test_all_active_pagerank_profile(self):
        g = community_graph(400, 3000, seed_stream="traffic-5")
        workload = pagerank.build_workload(g)
        profile = profile_iteration(workload, workload.iterations[0],
                                    cfg())
        assert profile.num_edges == g.num_edges
        assert profile.num_sources == g.num_vertices
        assert profile.frontier_bytes == 0
        assert profile.offsets_bytes >= (g.num_vertices + 1) * 8
        assert profile.neigh_bytes_compressed <= profile.neigh_bytes
        assert profile.update_bytes_compressed <= 1.1 * profile.update_bytes
        assert profile.push_dest_misses > 0

    def test_frontier_app_profile(self):
        g = community_graph(400, 3000, seed_stream="traffic-6")
        workload = bfs_app.build_workload(g)
        profiles = profile_workload(workload, cfg())
        assert len(profiles) == len(workload.iterations)
        mid = profiles[min(1, len(profiles) - 1)]
        assert mid.frontier_bytes > 0
        # Scattered source data cannot be compressed (Sec II-C).
        assert mid.src_bytes_compressed == mid.src_bytes

    def test_bigger_cache_never_increases_misses(self):
        g = community_graph(600, 5000, seed_stream="traffic-7")
        workload = pagerank.build_workload(g)
        small = profile_iteration(workload, workload.iterations[0],
                                  cfg(llc_kb=4))
        big = profile_iteration(workload, workload.iterations[0],
                                cfg(llc_kb=64))
        assert big.push_dest_misses <= small.push_dest_misses
        assert big.phi_spilled_updates <= small.phi_spilled_updates

    def test_sorted_updates_never_larger(self):
        g = community_graph(500, 4000, seed_stream="traffic-8")
        workload = pagerank.build_workload(g)
        p = profile_iteration(workload, workload.iterations[0], cfg())
        assert p.update_bytes_compressed <= \
            p.update_bytes_compressed_unsorted

    def test_num_bins_scale_with_vertices(self):
        g = community_graph(1000, 5000, seed_stream="traffic-9")
        workload = pagerank.build_workload(g)
        p = profile_iteration(workload, workload.iterations[0],
                              cfg(llc_kb=4))
        assert p.num_bins >= 2
