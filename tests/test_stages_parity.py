"""Staged parity: the stage-graph pipeline reproduces the monolithic
pricing path bit for bit.

The PR-3 golden-parity idea applied to the stage refactor: every
(app x scheme x preprocessing) cell — plus the Fig 19/20 ablations and
a seeded random sample over scales and datasets — is priced both
through the plain :class:`~repro.sim.Runner` (workload → profile →
simulate in one pass) and through :class:`~repro.stages.StagePricer`
(stream-gen → cache-replay → compress → timing, content-addressed).
``RunMetrics`` equality is exact (dataclass ``==``, no tolerance): the
refactor moved code across stage boundaries, it must not move numbers.
"""

import random

import pytest

from repro.sim import Runner
from repro.stages import StagePricer

TEST_SCALE = 16384

APPS = ("pr", "prd", "cc", "re", "dc", "bfs", "sp")
SCHEMES = ("push", "push+spzip", "ub", "ub+spzip", "phi", "phi+spzip",
           "pull", "pull+spzip", "push+cmh", "ub+cmh")
ALL_PARTS = ("adjacency", "updates", "vertex")


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=TEST_SCALE)


@pytest.fixture(scope="module")
def pricer():
    return StagePricer(scale=TEST_SCALE)


def _cases(scheme):
    """Ablation kwargs to sweep for one scheme (Fig 19/20 variants)."""
    cases = [{}]
    if scheme.endswith("+spzip"):
        cases += [{"parts": frozenset({part})} for part in ALL_PARTS]
        cases += [{"parts": frozenset()}, {"decoupled_only": True}]
    return cases


@pytest.mark.parametrize("preprocessing", ["none", "dfs"])
@pytest.mark.parametrize("app", APPS)
def test_staged_matches_monolithic(runner, pricer, app, preprocessing):
    dataset = "nlp" if app == "sp" else "ukl"
    for scheme in SCHEMES:
        for kwargs in _cases(scheme):
            mono = runner.run(app, scheme, dataset, preprocessing,
                              **kwargs)
            staged = pricer.price(app, scheme, dataset, preprocessing,
                                  **kwargs)
            assert staged == mono, (app, scheme, preprocessing, kwargs)


def test_randomized_cells_match():
    """Seeded random sample across scales, datasets, and schemes.

    Catches identity-dependent divergence the fixed sweep cannot — a
    stage that accidentally keys on the wrong config slice shows up
    here as a cross-cell collision or a numeric mismatch.
    """
    rng = random.Random(0xC0FFEE)
    runners = {}
    pricers = {}
    for _ in range(12):
        scale = rng.choice((4096, 8192))
        app = rng.choice(APPS)
        dataset = "nlp" if app == "sp" else rng.choice(
            ("ukl", "twi", "web", "arb"))
        preprocessing = rng.choice(("none", "dfs", "degree"))
        scheme = rng.choice(SCHEMES)
        if scale not in runners:
            runners[scale] = Runner(scale=scale)
            pricers[scale] = StagePricer(scale=scale)
        mono = runners[scale].run(app, scheme, dataset, preprocessing)
        staged = pricers[scale].price(app, scheme, dataset,
                                     preprocessing)
        assert staged == mono, (scale, app, scheme, dataset,
                                preprocessing)
