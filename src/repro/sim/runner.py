"""The experiment runner: app x scheme x dataset x preprocessing.

One stop for the harness and benchmarks: builds (and memoizes) the
workload for an (app, dataset, preprocessing) triple, profiles its
iterations once, and prices any scheme against the shared profiles.
Profiling is the expensive step (cache replays + compression
measurement); memoization means the six schemes of a Fig 15 bar group
share a single profiling pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.graph.datasets import DEFAULT_SCALE, load_preprocessed
from repro.obs import TRACER
from repro.runtime.traffic import (
    IterationProfile,
    ModelConfig,
    profile_workload,
)
from repro.runtime.workload import Workload
from repro.sim.metrics import RunMetrics


#: Model-LLC sizing: fraction of the 4-byte destination array the scaled
#: LLC can hold.  Real web graphs concentrate in-links on mega-hubs far
#: more than a small synthetic can (duplicate edges collapse at small
#: vertex counts), so a fixed linear LLC scale-down would not land in the
#: paper's hot-working-set residency regime; instead the model LLC is
#: sized per input to preserve that regime (see DESIGN.md Substitutions).
LLC_DEST_RESIDENCY = 0.85


def sized_model_config(system: SystemConfig, scale: int,
                       num_vertices: int) -> ModelConfig:
    """Model config with the LLC sized for one input (see above).

    Pure function of (system, scale, vertex count) so the memoizing
    :class:`Runner` and the staged pricing pipeline
    (:mod:`repro.stages`) resolve identical per-input configurations —
    the staged path fingerprints the *resolved* LLC geometry, so any
    change to this sizing logic flows into stage cache keys through the
    values it produces.
    """
    from dataclasses import replace
    target = int(LLC_DEST_RESIDENCY * num_vertices * 4)
    granule = system.llc.ways * system.llc.line_bytes
    size = max(granule * 4, (target // granule) * granule)
    llc = replace(system.llc, size_bytes=size)
    return ModelConfig(system=replace(system, llc=llc), id_scale=scale)


class Runner:
    """Memoizing simulation front end."""

    def __init__(self, scale: int = DEFAULT_SCALE,
                 system: Optional[SystemConfig] = None) -> None:
        self.scale = scale
        self.system = system if system is not None \
            else SystemConfig().scaled(scale)
        self.cfg = ModelConfig(system=self.system, id_scale=scale)
        self._workloads: Dict[Tuple[str, str, str], Workload] = {}
        self._profiles: Dict[Tuple[str, str, str],
                             List[IterationProfile]] = {}
        self._cfgs: Dict[str, ModelConfig] = {}

    def config_for(self, workload: Workload) -> ModelConfig:
        """Model config with the LLC sized for this input (see above).

        Keyed on the workload's full identity (app + graph content),
        not just the vertex count: distinct datasets can share a vertex
        count today without colliding here (the sizing below reads only
        ``num_vertices``), but any future per-input sizing term would
        silently cross-contaminate configs under the old key.
        """
        key = f"{workload.app}/{workload.graph.content_digest()}"
        if key not in self._cfgs:
            self._cfgs[key] = sized_model_config(
                self.system, self.scale, workload.graph.num_vertices)
        return self._cfgs[key]

    # -- building blocks -------------------------------------------------------

    def workload(self, app: str, dataset: str,
                 preprocessing: str = "none") -> Workload:
        from repro.apps import build_workload
        key = (app, dataset, preprocessing)
        if key not in self._workloads:
            with TRACER.span("runner.build_workload", app=app,
                             dataset=dataset,
                             preprocessing=preprocessing):
                if app == "sp":
                    self._workloads[key] = build_workload(
                        "sp", scale=self.scale)
                else:
                    graph = load_preprocessed(dataset, preprocessing,
                                              self.scale)
                    self._workloads[key] = build_workload(app,
                                                          graph=graph)
        return self._workloads[key]

    def profiles(self, app: str, dataset: str,
                 preprocessing: str = "none") -> List[IterationProfile]:
        key = (app, dataset, preprocessing)
        if key not in self._profiles:
            workload = self.workload(app, dataset, preprocessing)
            with TRACER.span("runner.profile", app=app, dataset=dataset,
                             preprocessing=preprocessing):
                self._profiles[key] = profile_workload(
                    workload, self.config_for(workload))
        return self._profiles[key]

    # -- simulation -------------------------------------------------------------

    def run(self, app: str, scheme, dataset: str,
            preprocessing: str = "none", **kwargs) -> RunMetrics:
        """Simulate one configuration.

        ``scheme`` is a name (including ablation brackets, e.g.
        ``phi+spzip[parts=adjacency]``) or a
        :class:`~repro.schemes.SchemeSpec`; kwargs feed the legacy
        ablation knobs (``parts``, ``decoupled_only``).
        """
        from repro.schemes import resolve, simulate_spec
        spec = resolve(scheme, **kwargs)
        # One span per (app, scheme, input) cell, tagged with the
        # canonical SchemeSpec string — the unit the paper's sweep (and
        # `repro perf diff`) attributes wall time to.
        with TRACER.span("runner.cell", app=app,
                         scheme=spec.canonical(), dataset=dataset,
                         preprocessing=preprocessing):
            workload = self.workload(app, dataset, preprocessing)
            profiles = self.profiles(app, dataset, preprocessing)
            with TRACER.span("runner.price"):
                return simulate_spec(workload, profiles, spec,
                                     self.config_for(workload),
                                     dataset=dataset,
                                     preprocessing=preprocessing)

    def run_all_schemes(self, app: str, dataset: str,
                        preprocessing: str = "none",
                        schemes=None) -> Dict[str, RunMetrics]:
        """Run one app against a set of schemes.

        ``schemes`` is a registry group name (``"paper"``, ``"cmh"``,
        ``"extensions"``, ``"all"``), an iterable of scheme
        names/specs, or ``None`` for the paper's six schemes.  Keys of
        the result are the scheme names as given (canonical form for
        specs).
        """
        from repro.schemes import SchemeSpec, scheme_names
        if schemes is None:
            schemes = scheme_names("paper")
        elif isinstance(schemes, str):
            schemes = scheme_names(schemes)
        out: Dict[str, RunMetrics] = {}
        for scheme in schemes:
            key = scheme.canonical() if isinstance(scheme, SchemeSpec) \
                else str(scheme)
            out[key] = self.run(app, scheme, dataset, preprocessing)
        return out
