"""Flat virtual address space backing the functional model.

The SpZip engines operate on virtual addresses (paper Sec III-D).  The
functional model gives DCL programs a real address space: named arrays are
allocated with cache-line alignment onto a flat 64-bit space, and loads
and stores move real bytes between operators and numpy-backed storage.

The address space also powers traffic *classification*: every region
carries a data-class label (``adjacency``, ``source_vertex``,
``destination_vertex``, ``updates`` — the paper's Fig 15b categories), so
the cache hierarchy can attribute every off-chip byte to the structure
that caused it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

LINE_BYTES = 64

#: Traffic classes used in the paper's breakdowns (Fig 7/8/15b/15d/18).
DATA_CLASSES = (
    "adjacency",
    "source_vertex",
    "destination_vertex",
    "updates",
    "other",
)


@dataclass
class Region:
    """One named, contiguous allocation."""

    name: str
    base: int
    nbytes: int
    data_class: str
    backing: np.ndarray  # 1-D uint8 view of the storage

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Allocator + functional load/store over named regions."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._regions: List[Region] = []
        self._bases: List[int] = []
        self._by_name: Dict[str, Region] = {}

    # -- allocation -------------------------------------------------------

    def alloc(self, name: str, nbytes: int,
              data_class: str = "other") -> Region:
        """Allocate ``nbytes`` of zeroed, line-aligned storage."""
        if name in self._by_name:
            raise ValueError(f"region {name!r} already allocated")
        if data_class not in DATA_CLASSES:
            raise ValueError(f"unknown data class {data_class!r}")
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        size = max(1, nbytes)
        backing = np.zeros(size, dtype=np.uint8)
        region = Region(name, self._next, size, data_class, backing)
        self._regions.append(region)
        self._bases.append(region.base)
        self._by_name[name] = region
        # Advance, keeping line alignment and a guard gap.
        self._next = (region.end + 2 * LINE_BYTES - 1) & ~(LINE_BYTES - 1)
        return region

    def alloc_array(self, name: str, values: np.ndarray,
                    data_class: str = "other") -> Region:
        """Allocate a region initialised with ``values`` (copied)."""
        flat = np.ascontiguousarray(values).view(np.uint8).reshape(-1)
        region = self.alloc(name, flat.size, data_class)
        region.backing[:flat.size] = flat
        return region

    # -- lookup -----------------------------------------------------------

    def region(self, name: str) -> Region:
        return self._by_name[name]

    def region_of(self, addr: int) -> Optional[Region]:
        """Region containing ``addr``, or ``None``."""
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0:
            return None
        region = self._regions[index]
        return region if region.contains(addr) else None

    def data_class_of(self, addr: int) -> str:
        region = self.region_of(addr)
        return region.data_class if region is not None else "other"

    # -- functional access ------------------------------------------------

    def load(self, addr: int, nbytes: int) -> bytes:
        region = self._require(addr, nbytes)
        start = addr - region.base
        return region.backing[start:start + nbytes].tobytes()

    def store(self, addr: int, data: bytes) -> None:
        region = self._require(addr, len(data))
        start = addr - region.base
        region.backing[start:start + len(data)] = np.frombuffer(data,
                                                                np.uint8)

    def load_elems(self, addr: int, count: int, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = self.load(addr, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def store_elems(self, addr: int, values: np.ndarray) -> None:
        self.store(addr, np.ascontiguousarray(values).tobytes())

    def _require(self, addr: int, nbytes: int) -> Region:
        region = self.region_of(addr)
        if region is None:
            raise MemoryError(f"access to unmapped address {addr:#x}")
        if addr + nbytes > region.end:
            raise MemoryError(
                f"access [{addr:#x}, {addr + nbytes:#x}) crosses the end of "
                f"region {region.name!r}"
            )
        return region
