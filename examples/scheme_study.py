#!/usr/bin/env python
"""Scheme study: compare Push / UB / PHI with and without SpZip.

A miniature of the paper's Fig 15 on one application and input: simulate
all six execution strategies on the scaled uk-2005 stand-in, with and
without DFS preprocessing, and print speedups plus the traffic breakdown
by data type.

Run:  python examples/scheme_study.py [app] [dataset]
      (defaults: bfs ukl; apps: pr prd cc re dc bfs sp)
"""

import sys

from repro.sim import Runner


def show(runner, app, dataset, preprocessing):
    print(f"\n--- {app} on {dataset} "
          f"({preprocessing} preprocessing) ---")
    runs = runner.run_all_schemes(app, dataset, preprocessing,
                                  schemes="paper")
    base = runs["push"]
    header = (f"{'scheme':12s} {'speedup':>8s} {'traffic':>8s} "
              f"{'adj':>6s} {'src':>6s} {'dst':>6s} {'upd':>6s} bound")
    print(header)
    for scheme, run in runs.items():
        b = run.normalized_breakdown(base)
        bound = "memory" if run.bandwidth_bound else "core"
        print(f"{scheme:12s} {run.speedup_over(base):8.2f} "
              f"{run.traffic_ratio_over(base):8.2f} "
              f"{b['adjacency']:6.2f} {b['source_vertex']:6.2f} "
              f"{b['destination_vertex']:6.2f} {b['updates']:6.2f} "
              f"{bound}")


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "ukl"
    if app == "sp":
        dataset = "nlp"
    runner = Runner()
    show(runner, app, dataset, "none")
    show(runner, app, dataset, "dfs")
    print("\nReading the table: without preprocessing, scattered "
          "destination updates dominate Push and compression barely "
          "helps it; batching (UB/PHI) turns traffic into sequential "
          "updates that SpZip compresses well.  With preprocessing, "
          "Push gets locality, UB's streamed updates become waste, and "
          "the now-compressible adjacency matrix is the main prize.")


if __name__ == "__main__":
    main()
