"""Additional sparse formats the DCL supports (paper Sec II-B).

"The DCL can also handle many other sparse formats, which recent work has
systematized as a composition of access primitives that the DCL supports,
including matrices in DCSR, COO, DIA, or ELL" — this module implements
those formats over the CSR substrate, with lossless conversions both
ways, so DCL traversal programs (see
:func:`repro.engine.format_pipelines`) have real data to walk.

Every format stores the same logical matrix; ``to_csr`` round-trips are
pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import OFFSET_DTYPE, VERTEX_DTYPE, CsrGraph


@dataclass
class CooMatrix:
    """Coordinate format: parallel (row, col[, value]) arrays, row-major
    sorted — the format edge lists arrive in."""

    num_rows: int
    rows: np.ndarray
    cols: np.ndarray
    values: Optional[np.ndarray] = None

    @classmethod
    def from_csr(cls, csr: CsrGraph) -> "CooMatrix":
        rows = np.repeat(np.arange(csr.num_vertices, dtype=VERTEX_DTYPE),
                         csr.out_degrees())
        return cls(csr.num_vertices, rows, csr.neighbors.copy(),
                   None if csr.values is None else csr.values.copy())

    def to_csr(self) -> CsrGraph:
        return CsrGraph.from_edges(self.num_rows,
                                   self.rows.astype(np.int64),
                                   self.cols.astype(np.int64),
                                   values=self.values,
                                   dedup=False, drop_self_loops=False)

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    def footprint_bytes(self, value_bytes: int = 0) -> int:
        per = 4 + 4 + (value_bytes if self.values is not None else 0)
        return self.nnz * per


@dataclass
class DcsrMatrix:
    """Doubly-compressed sparse rows: only non-empty rows are stored.

    ``row_ids[i]`` is the i-th non-empty row; ``offsets`` has one entry
    per stored row (plus the end sentinel).  The format of choice for
    hypersparse matrices, where CSR's offsets array would dwarf the data.
    """

    num_rows: int
    row_ids: np.ndarray
    offsets: np.ndarray
    cols: np.ndarray
    values: Optional[np.ndarray] = None

    @classmethod
    def from_csr(cls, csr: CsrGraph) -> "DcsrMatrix":
        degrees = csr.out_degrees()
        nonempty = np.flatnonzero(degrees > 0).astype(VERTEX_DTYPE)
        offsets = np.concatenate(
            ([0], np.cumsum(degrees[nonempty.astype(np.int64)]))
        ).astype(OFFSET_DTYPE)
        return cls(csr.num_vertices, nonempty, offsets,
                   csr.neighbors.copy(),
                   None if csr.values is None else csr.values.copy())

    def to_csr(self) -> CsrGraph:
        offsets = np.zeros(self.num_rows + 1, dtype=OFFSET_DTYPE)
        lengths = np.diff(self.offsets)
        offsets[self.row_ids.astype(np.int64) + 1] = lengths
        np.cumsum(offsets, out=offsets)
        return CsrGraph(offsets, self.cols, values=self.values)

    @property
    def num_stored_rows(self) -> int:
        return int(self.row_ids.size)

    def footprint_bytes(self, value_bytes: int = 0) -> int:
        return (self.row_ids.size * 4 + self.offsets.size * 8
                + self.cols.size * (4 + (value_bytes if self.values
                                         is not None else 0)))


@dataclass
class EllMatrix:
    """ELLPACK: fixed-width rows padded with a sentinel column.

    Regular layout (``num_rows x width``) suited to vector hardware;
    wasteful when degrees are skewed — the classic format tradeoff.
    """

    PAD = np.uint32(0xFFFFFFFF)

    num_rows: int
    width: int
    cols: np.ndarray  # (num_rows, width), PAD-filled
    values: Optional[np.ndarray] = None

    @classmethod
    def from_csr(cls, csr: CsrGraph) -> "EllMatrix":
        degrees = csr.out_degrees()
        width = int(degrees.max()) if degrees.size else 0
        cols = np.full((csr.num_vertices, max(1, width)), cls.PAD,
                       dtype=VERTEX_DTYPE)
        values = None
        if csr.values is not None:
            values = np.zeros((csr.num_vertices, max(1, width)),
                              dtype=csr.values.dtype)
        for row in range(csr.num_vertices):
            data = csr.row(row)
            cols[row, :data.size] = data
            if values is not None:
                values[row, :data.size] = csr.row_values(row)
        return cls(csr.num_vertices, max(1, width), cols, values)

    def to_csr(self) -> CsrGraph:
        mask = self.cols != self.PAD
        degrees = mask.sum(axis=1)
        offsets = np.concatenate(([0], np.cumsum(degrees))).astype(
            OFFSET_DTYPE)
        neighbors = self.cols[mask]
        values = self.values[mask] if self.values is not None else None
        return CsrGraph(offsets, neighbors, values=values)

    def footprint_bytes(self, value_bytes: int = 0) -> int:
        per = 4 + (value_bytes if self.values is not None else 0)
        return self.num_rows * self.width * per

    @property
    def padding_fraction(self) -> float:
        stored = self.num_rows * self.width
        real = int((self.cols != self.PAD).sum())
        return 1.0 - real / stored if stored else 0.0


@dataclass
class DiaMatrix:
    """Diagonal format: one dense array per non-empty diagonal.

    ``diagonals[i]`` holds the values of offset ``offsets[i]``
    (col - row); perfect for banded matrices like the nlp input, useless
    for graphs.  Stores structure as a presence mask when no values are
    attached.
    """

    num_rows: int
    offsets: np.ndarray             # sorted diagonal offsets (col - row)
    data: np.ndarray                # (num_diags, num_rows) float or bool

    @classmethod
    def from_csr(cls, csr: CsrGraph) -> "DiaMatrix":
        rows = np.repeat(np.arange(csr.num_vertices, dtype=np.int64),
                         csr.out_degrees())
        cols = csr.neighbors.astype(np.int64)
        diag_offsets = np.unique(cols - rows)
        index = {int(off): i for i, off in enumerate(diag_offsets)}
        if csr.values is not None:
            data = np.zeros((diag_offsets.size, csr.num_vertices),
                            dtype=np.float64)
            for r, c, v in zip(rows.tolist(), cols.tolist(),
                               csr.values.tolist()):
                data[index[c - r], r] = v
        else:
            data = np.zeros((diag_offsets.size, csr.num_vertices),
                            dtype=bool)
            for r, c in zip(rows.tolist(), cols.tolist()):
                data[index[c - r], r] = True
        return cls(csr.num_vertices, diag_offsets, data)

    def to_csr(self) -> CsrGraph:
        edges_r = []
        edges_c = []
        values = [] if self.data.dtype != bool else None
        for i, off in enumerate(self.offsets.tolist()):
            lane = self.data[i]
            if lane.dtype == bool:
                rs = np.flatnonzero(lane)
            else:
                rs = np.flatnonzero(lane != 0)
            cs = rs + off
            keep = (cs >= 0) & (cs < self.num_rows)
            edges_r.append(rs[keep])
            edges_c.append(cs[keep])
            if values is not None:
                values.append(lane[rs[keep]])
        rows = np.concatenate(edges_r) if edges_r else np.empty(0,
                                                                np.int64)
        cols = np.concatenate(edges_c) if edges_c else np.empty(0,
                                                                np.int64)
        vals = np.concatenate(values) if values else None
        return CsrGraph.from_edges(self.num_rows, rows, cols, values=vals,
                                   dedup=False, drop_self_loops=False)

    @property
    def num_diagonals(self) -> int:
        return int(self.offsets.size)

    def footprint_bytes(self, value_bytes: int = 8) -> int:
        return (self.offsets.size * 8
                + self.data.shape[0] * self.data.shape[1] * value_bytes)


def best_format_for(csr: CsrGraph, value_bytes: int = 0) -> str:
    """Pick the smallest-footprint format (a tuning pass would do this).

    DIA only competes when the matrix concentrates on few diagonals, so
    it is considered only below a diagonal-count threshold.
    """
    candidates = {
        "csr": csr.adjacency_bytes() + csr.num_edges * value_bytes,
        "coo": CooMatrix.from_csr(csr).footprint_bytes(value_bytes),
        "dcsr": DcsrMatrix.from_csr(csr).footprint_bytes(value_bytes),
    }
    degrees = csr.out_degrees()
    if degrees.size and degrees.max() <= 4 * max(1, degrees.mean()):
        candidates["ell"] = EllMatrix.from_csr(csr).footprint_bytes(
            value_bytes)
    rows = np.repeat(np.arange(csr.num_vertices, dtype=np.int64),
                     degrees)
    num_diags = np.unique(csr.neighbors.astype(np.int64) - rows).size \
        if csr.num_edges else 0
    if 0 < num_diags <= 64:
        candidates["dia"] = DiaMatrix.from_csr(csr).footprint_bytes(
            max(1, value_bytes))
    return min(candidates, key=candidates.get)
