"""System configuration constants for the simulated multicore (paper Table II).

The paper evaluates SpZip on a 16-core Haswell-like system simulated with
zsim.  This module captures the same machine description as a dataclass so
every part of the model (timing, cache sizing, NoC geometry) reads from one
place.

Two knobs deserve explanation:

``scale``
    The paper runs billion-edge graphs against a 32 MB LLC.  A pure-Python
    model cannot stream billions of edges, so datasets are linearly scaled
    down (see ``repro.graph.datasets``) and the *capacity-sensitive*
    structures (LLC, L2, bins) are scaled by the same factor.  What drives
    every locality phenomenon in the paper is the ratio of working-set size
    to cache capacity, and linear co-scaling preserves that ratio.

``bytes_per_cycle``
    4 memory controllers x 12.8 GB/s at 3.5 GHz is ~14.63 bytes per cycle of
    peak DRAM bandwidth.  The bottleneck timing model uses this directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Linear scale-down factor between the paper's inputs and our synthetic
#: stand-ins (see DESIGN.md section 5).
DEFAULT_SCALE = 1024


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency_cycles: int = 1
    replacement: str = "lru"  # "lru" or "drrip"

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.ways)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.ways <= 0:
            raise ValueError("associativity must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory: 4 FR-FCFS DDR3-1600 controllers (Table II)."""

    controllers: int = 4
    gb_per_sec_per_controller: float = 12.8
    latency_cycles: int = 200  # typical loaded DRAM round trip seen by core

    @property
    def total_gb_per_sec(self) -> float:
        return self.controllers * self.gb_per_sec_per_controller


@dataclass(frozen=True)
class NocConfig:
    """4x4 mesh with X-Y routing, 128-bit flits (Table II)."""

    mesh_width: int = 4
    mesh_height: int = 4
    flit_bytes: int = 16
    router_latency_cycles: int = 1
    link_latency_cycles: int = 1


@dataclass(frozen=True)
class SpZipConfig:
    """Per-engine parameters of the SpZip fetcher/compressor (Sec III)."""

    scratchpad_bytes: int = 2048
    max_contexts: int = 16
    max_queues: int = 16
    au_outstanding_lines: int = 8
    fu_bytes_per_cycle: int = 32
    compress_chunk_elems: int = 32  # BPC chunk / sorting window
    sort_order_insensitive: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated system (paper Table II), plus model scaling."""

    num_cores: int = 16
    freq_ghz: float = 3.5
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, latency_cycles=3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, latency_cycles=6)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            32 * 1024 * 1024, 16, latency_cycles=24, replacement="drrip"
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    spzip: SpZipConfig = field(default_factory=SpZipConfig)
    scale: int = 1

    @property
    def bytes_per_cycle(self) -> float:
        """Peak DRAM bandwidth in bytes per core-clock cycle."""
        return self.memory.total_gb_per_sec / self.freq_ghz

    def scaled(self, scale: int = DEFAULT_SCALE) -> "SystemConfig":
        """Return a copy with capacity-sensitive structures scaled down.

        Caches keep their associativity and line size; only capacity
        shrinks, with small floors so the geometry stays legal.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")

        def shrink(cache: CacheConfig, floor: int) -> CacheConfig:
            size = max(floor, cache.size_bytes // scale)
            # Keep sets a power of two by rounding size to a multiple of
            # ways * line size.
            granule = cache.ways * cache.line_bytes
            size = max(granule, (size // granule) * granule)
            return replace(cache, size_bytes=size)

        # The LLC floor is calibrated so the scaled system sits in the
        # same scatter-update hit-rate regime as the paper's: real web
        # graphs concentrate in-links on mega-hubs far more than a small
        # synthetic graph can (duplicate edges collapse), so the model
        # LLC keeps a slightly larger share of the hot destination lines
        # to compensate (see DESIGN.md "Substitutions").
        return replace(
            self,
            l1d=shrink(self.l1d, 2 * 1024),
            l2=shrink(self.l2, 4 * 1024),
            llc=shrink(self.llc, 32 * 1024),
            scale=scale,
        )


def default_system() -> SystemConfig:
    """The paper's Table II system at full scale."""
    return SystemConfig()


def model_system(scale: int = DEFAULT_SCALE) -> SystemConfig:
    """The Table II system co-scaled with the synthetic datasets."""
    return SystemConfig().scaled(scale)
