"""Tests for the blocked (GridGraph-style) adjacency layout."""

import numpy as np
import pytest

from repro.graph import community_graph
from repro.graph.blocked import BlockedGraph


def sample():
    return community_graph(120, 800, seed_stream="blocked")


class TestBlockedGraph:
    def test_roundtrip(self):
        g = sample()
        blocked = BlockedGraph(g, num_blocks=4)
        back = blocked.to_csr()
        assert np.array_equal(back.offsets, g.offsets)
        assert np.array_equal(back.neighbors, g.neighbors)

    def test_edges_partition_exactly(self):
        g = sample()
        blocked = BlockedGraph(g, num_blocks=3)
        assert sum(b.num_edges for b in blocked.iter_blocks()) == \
            g.num_edges

    def test_block_membership(self):
        g = sample()
        blocked = BlockedGraph(g, num_blocks=4)
        size = blocked.block_size
        for edge in blocked.edge_multiset():
            src, dst = edge
            assert 0 <= src < g.num_vertices
            assert 0 <= dst < g.num_vertices
        block = blocked.block(1, 2)
        for local_dst in block.neighbors:
            assert local_dst < size

    def test_single_block_is_whole_graph(self):
        g = sample()
        blocked = BlockedGraph(g, num_blocks=1)
        assert blocked.block(0, 0).num_edges == g.num_edges

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ValueError):
            BlockedGraph(sample(), num_blocks=0)

    def test_destination_slice_shrinks_with_blocks(self):
        g = sample()
        few = BlockedGraph(g, num_blocks=2)
        many = BlockedGraph(g, num_blocks=8)
        assert many.destination_slice_bytes() < \
            few.destination_slice_bytes()

    def test_blocking_improves_local_compression(self):
        """Block-local ids have bounded deltas: blocked streams compress
        at least as well as whole-graph rows (Sec II-B's point that the
        layout should match the access pattern)."""
        from repro.runtime import rows_compressed_bytes
        g = community_graph(1000, 8000, seed_stream="blocked-comp")
        whole = rows_compressed_bytes(g, np.arange(g.num_vertices), 1)
        blocked = BlockedGraph(g, num_blocks=8).compressed_block_bytes()
        assert blocked <= whole * 1.05
