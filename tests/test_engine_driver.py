"""Tests for the core<->engine co-simulation driver and the scheduler."""

import warnings

import numpy as np
import pytest

from repro.config import SpZipConfig
from repro.dcl import Entry, MarkerQueue, NEVER, RoundRobinScheduler, \
    pack_range
from repro.engine import (
    INPUT_QUEUE,
    MODE_CYCLE,
    MODE_EVENT,
    ROWS_QUEUE,
    DriveRequest,
    EngineStall,
    Feed,
    Fetcher,
    csr_traversal,
    drive,
)
from repro.engine.driver import DriveResult
from repro.graph import CsrGraph
from repro.memory import AddressSpace


def tiny_fetcher(**kwargs):
    g = CsrGraph(np.array([0, 2, 4, 5, 7]),
                 np.array([1, 2, 0, 2, 3, 1, 2], dtype=np.uint32))
    space = AddressSpace()
    space.alloc_array("offsets", g.offsets, "adjacency")
    space.alloc_array("rows", g.neighbors, "adjacency")
    return Fetcher.from_program(csr_traversal(row_elem_bytes=4), space,
                                SpZipConfig(), **kwargs)


class TestFeed:
    def test_of_accepts_ints_tuples_entries_feeds(self):
        assert Feed.of(5) == Feed(5, False)
        assert Feed.of((6, True)) == Feed(6, True)
        assert Feed.of(Entry(7, False)) == Feed(7, False)
        assert Feed.of(Feed(8, True)) == Feed(8, True)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Feed(1).value = 2


class TestDriveRequest:
    def test_normalizes_feed_spellings(self):
        req = DriveRequest(feeds={"q": [5, (6, True), Entry(7)]},
                           consume=["out"])
        assert req.feeds["q"] == (Feed(5), Feed(6, True), Feed(7))
        assert req.consume == ("out",)

    def test_frozen(self):
        req = DriveRequest()
        with pytest.raises(AttributeError):
            req.max_cycles = 5

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            DriveRequest(mode="warp")

    def test_rejects_bad_dequeue_rate(self):
        with pytest.raises(ValueError):
            DriveRequest(dequeues_per_cycle=0)


class TestDriveResult:
    def test_values_filters_markers(self):
        result = DriveResult(cycles=1, outputs={
            "q": [Entry(1), Entry(0, True), Entry(2)]})
        assert result.values("q") == [1, 2]

    def test_chunks_group_by_markers(self):
        result = DriveResult(cycles=1, outputs={
            "q": [Entry(1), Entry(2), Entry(0, True), Entry(3),
                  Entry(0, True)]})
        assert result.chunks("q") == [[1, 2], [3]]

    def test_trailing_values_form_final_chunk(self):
        result = DriveResult(cycles=1, outputs={
            "q": [Entry(1), Entry(0, True), Entry(9)]})
        assert result.chunks("q") == [[1], [9]]

    def test_unknown_queue_empty(self):
        result = DriveResult(cycles=1, outputs={})
        assert result.values("nope") == []
        assert result.chunks("nope") == []


class TestDrive:
    def test_slow_consumer_still_completes(self):
        f = tiny_fetcher()
        result = drive(f, DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, 5)]},
            consume=[ROWS_QUEUE], dequeues_per_cycle=1))
        assert result.chunks(ROWS_QUEUE) == [[1, 2], [0, 2], [3], [1, 2]]

    def test_no_feeds_drains_immediately(self):
        f = tiny_fetcher()
        result = drive(f, DriveRequest(consume=[ROWS_QUEUE]))
        assert result.outputs[ROWS_QUEUE] == []

    def test_cycle_budget_enforced(self):
        f = tiny_fetcher()
        with pytest.raises(EngineStall):
            drive(f, DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 5)]},
                                  consume=[ROWS_QUEUE], max_cycles=3))

    def test_result_carries_scheduler_stats(self):
        result = drive(tiny_fetcher(), DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, 5)]},
            consume=[ROWS_QUEUE]))
        assert result.issued == sum(result.fires_by_op.values()) > 0
        assert result.cycles == result.issued + result.idle_cycles
        assert 0.0 < result.activity_factor <= 1.0
        assert result.mode == MODE_EVENT

    def test_mode_override_per_request(self):
        result = drive(tiny_fetcher(), DriveRequest(
            feeds={INPUT_QUEUE: [pack_range(0, 5)]},
            consume=[ROWS_QUEUE], mode=MODE_CYCLE))
        assert result.mode == MODE_CYCLE
        assert result.skipped_idle_cycles == 0


class TestRemovedShim:
    """The pre-typed keyword form is gone: DriveRequest or TypeError."""

    def test_keyword_form_raises_type_error(self):
        # The legacy keyword parameters no longer exist, so the call
        # signature itself rejects them.
        with pytest.raises(TypeError):
            drive(tiny_fetcher(),
                  feeds={INPUT_QUEUE: [pack_range(0, 5)]},
                  consume=[ROWS_QUEUE], dequeues_per_cycle=1)

    def test_positional_feeds_dict_raises_type_error(self):
        with pytest.raises(TypeError, match="DriveRequest"):
            drive(tiny_fetcher(), {INPUT_QUEUE: [pack_range(0, 5)]})
        # The old three-argument spelling fails on arity alone.
        with pytest.raises(TypeError):
            drive(tiny_fetcher(),
                  {INPUT_QUEUE: [pack_range(0, 5)]}, [ROWS_QUEUE])

    def test_missing_request_raises_type_error(self):
        with pytest.raises(TypeError):
            drive(tiny_fetcher())

    def test_request_form_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            drive(tiny_fetcher(), DriveRequest(
                feeds={INPUT_QUEUE: [pack_range(0, 5)]},
                consume=[ROWS_QUEUE]))


class TestFromProgram:
    def test_from_program_equivalent_to_manual_wiring(self):
        g = CsrGraph(np.array([0, 2, 4, 5, 7]),
                     np.array([1, 2, 0, 2, 3, 1, 2], dtype=np.uint32))
        space = AddressSpace()
        space.alloc_array("offsets", g.offsets, "adjacency")
        space.alloc_array("rows", g.neighbors, "adjacency")
        manual = Fetcher(SpZipConfig(), space)
        manual.load_program(csr_traversal(row_elem_bytes=4))
        built = Fetcher.from_program(csr_traversal(row_elem_bytes=4),
                                     space, SpZipConfig())
        req = DriveRequest(feeds={INPUT_QUEUE: [pack_range(0, 5)]},
                           consume=[ROWS_QUEUE])
        assert drive(manual, req).cycles == drive(built, req).cycles

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            tiny_fetcher(mode="bogus")

    def test_mode_stored(self):
        assert tiny_fetcher(mode=MODE_CYCLE).mode == MODE_CYCLE
        assert tiny_fetcher().mode == MODE_EVENT


class TestRoundRobinScheduler:
    class FakeOp:
        def __init__(self, name, ready_answers):
            self.name = name
            self._answers = list(ready_answers)
            self.fired = 0

        def ready(self, engine):
            return self._answers.pop(0) if self._answers else False

        def fire(self, engine):
            self.fired += 1

    def test_round_robin_fairness(self):
        a = self.FakeOp("a", [True] * 10)
        b = self.FakeOp("b", [True] * 10)
        sched = RoundRobinScheduler([a, b])
        picks = [sched.pick(None).name for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_skips_unready_operators(self):
        a = self.FakeOp("a", [False, False])
        b = self.FakeOp("b", [True, True])
        sched = RoundRobinScheduler([a, b])
        assert sched.pick(None).name == "b"
        assert sched.pick(None).name == "b"

    def test_idle_cycles_tracked(self):
        a = self.FakeOp("a", [False, True])
        sched = RoundRobinScheduler([a])
        assert sched.pick(None) is None
        assert sched.pick(None) is a
        assert sched.idle_cycles == 1
        assert sched.activity_factor() == 0.5

    def test_fires_by_op_accounting(self):
        a = self.FakeOp("a", [True] * 5)
        b = self.FakeOp("b", [True] * 5)
        never = self.FakeOp("never", [])
        sched = RoundRobinScheduler([a, never, b])
        for _ in range(4):
            sched.pick(None)
        assert sched.fires_by_op == {"a": 2, "b": 2, "never": 0}
        assert sched.issued == 4

    def test_pick_sole_matches_pick_accounting(self):
        a = self.FakeOp("a", [False] * 10)
        b = self.FakeOp("b", [True] * 10)
        sched = RoundRobinScheduler([a, b])
        op = sched.pick_sole(None)
        assert op is b
        assert sched.issued == 1
        assert sched.fires_by_op == {"a": 0, "b": 1}
        # pointer advanced past b: next pick scans a first again
        assert sched.pick(None) is b

    def test_pick_sole_refuses_contended_cycles(self):
        a = self.FakeOp("a", [True] * 4)
        b = self.FakeOp("b", [True] * 4)
        sched = RoundRobinScheduler([a, b])
        assert sched.pick_sole(None) is None
        assert sched.issued == 0
        assert sched.idle_cycles == 0  # caller falls back to pick()

    def test_pick_sole_none_when_nothing_ready(self):
        a = self.FakeOp("a", [False])
        sched = RoundRobinScheduler([a])
        assert sched.pick_sole(None) is None
        assert sched.idle_cycles == 0

    def test_skip_idle_books_both_counters(self):
        sched = RoundRobinScheduler([self.FakeOp("a", [True])])
        sched.pick(None)
        sched.skip_idle(7)
        assert sched.idle_cycles == 7
        assert sched.skipped_idle_cycles == 7
        assert sched.activity_factor() == pytest.approx(1 / 8)

    def test_skip_idle_rejects_negative(self):
        sched = RoundRobinScheduler([])
        with pytest.raises(ValueError):
            sched.skip_idle(-1)

    def test_next_ready_cycle_defaults_to_never(self):
        assert RoundRobinScheduler([]).next_ready_cycle(None) == NEVER


class TestQueueReservations:
    def test_reserved_space_blocks_direct_push(self):
        q = MarkerQueue("q", capacity_bytes=8, elem_bytes=4)
        assert q.reserve(entries=2)
        assert not q.try_push(1)  # all space promised

    def test_reserved_push_consumes_reservation(self):
        q = MarkerQueue("q", capacity_bytes=8, elem_bytes=4)
        q.reserve(entries=1)
        q.push(7, reserved=True)
        assert q.reserved_bytes == 0
        assert len(q) == 1

    def test_reserved_push_without_reserve_rejected(self):
        q = MarkerQueue("q", capacity_bytes=8, elem_bytes=4)
        with pytest.raises(OverflowError):
            q.push(7, reserved=True)

    def test_reserve_fails_when_full(self):
        q = MarkerQueue("q", capacity_bytes=4, elem_bytes=4)
        q.push(1)
        assert not q.reserve(entries=1)
