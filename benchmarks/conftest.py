"""Shared fixtures for the benchmark harness.

All benchmarks share one session-scoped
:class:`~repro.jobs.JobRunner`, so profiling work (cache replays,
compression measurement) is done once per (app, input, preprocessing)
and reused by every figure that needs it — exactly how the paper's
figures share one set of simulations.

Two environment knobs engage the orchestration layer
(see docs/ORCHESTRATION.md):

``REPRO_JOBS``
    worker processes for the shared runner (default 1, in-process);
``REPRO_CACHE_DIR``
    content-addressed result cache root; when set, warm benchmark
    reruns skip profiling entirely (the code-salted cache key
    invalidates stale entries automatically after model changes).
"""

import os

import pytest

from repro.harness import ExperimentResult, render_table, save_table
from repro.jobs import JobRunner

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def runner():
    return JobRunner(
        jobs=int(os.environ.get("REPRO_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


@pytest.fixture(scope="session")
def report():
    """Print a result table and save it under benchmarks/results/."""

    def _report(result: ExperimentResult) -> ExperimentResult:
        text = render_table(result)
        print()
        print(text)
        save_table(result, RESULTS_DIR)
        return result

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
