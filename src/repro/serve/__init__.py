"""Simulation-as-a-service: the asyncio HTTP/JSON serving front end.

The batch machinery (``repro.jobs``) answers "run this sweep"; this
package answers "keep answering pricing questions forever".  Layering
(each module only imports downward):

``http``       minimal HTTP/1.1 over asyncio streams (stdlib only)
``protocol``   JSON bodies <-> canonical ``RunRequest`` identities
``store``      tiered read-through result store (hot LRU -> disk CAS)
``admission``  bounded dispatch concurrency with wait telemetry
``batching``   single-flight coalescing of identical in-flight requests
               plus cross-request batching of same-profile cells
``pool``       compute backends: in-process threads or a sharded
               OS-process worker pool
``app``        endpoints, request spans, compute dispatch, graceful
               drain

Endpoints: ``POST /price``, ``POST /simulate``, ``POST /sweep``,
``GET /schemes``, ``GET /healthz``, ``GET /stats``.  See
docs/SERVING.md for schemas and semantics, ``python -m repro serve``
for the CLI entry point, and ``benchmarks/serve_load.py`` for the
load/latency harness.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import (
    ComputeError,
    DRAIN_TIMEOUT_S,
    MAX_SWEEP_CELLS,
    ServeApp,
    ServeServer,
)
from repro.serve.batching import (
    DEFAULT_BATCH_MAX,
    DEFAULT_BATCH_WINDOW_S,
    GroupBatcher,
    SingleFlight,
)
from repro.serve.http import (
    BadRequest,
    HttpRequest,
    MAX_BODY_BYTES,
    parse_response,
    read_request,
    render_response,
    write_json,
)
from repro.serve.pool import (
    BACKENDS,
    ComputeBackend,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)
from repro.serve.protocol import (
    ProtocolError,
    metrics_to_json,
    parse_price,
    parse_sweep,
)
from repro.serve.store import DEFAULT_HOT_CAPACITY, TieredStore

__all__ = [
    "AdmissionController",
    "BACKENDS",
    "BadRequest",
    "ComputeBackend",
    "ComputeError",
    "DEFAULT_BATCH_MAX",
    "DEFAULT_BATCH_WINDOW_S",
    "DEFAULT_HOT_CAPACITY",
    "DRAIN_TIMEOUT_S",
    "GroupBatcher",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_SWEEP_CELLS",
    "ProcessBackend",
    "ProtocolError",
    "ServeApp",
    "ServeServer",
    "SingleFlight",
    "ThreadBackend",
    "TieredStore",
    "make_backend",
    "metrics_to_json",
    "parse_price",
    "parse_response",
    "parse_sweep",
    "read_request",
    "render_response",
    "write_json",
]
