"""Graph deltas: canonicalization, apply semantics, versioned registry.

The dynamic-graph contract has one load-bearing invariant: a graph
maintained incrementally through :func:`~repro.graph.delta.apply_delta`
is *bit-identical* (same content digest) to a from-scratch rebuild of
the mutated edge list.  Everything downstream — partition keys, stage
fingerprints, cache reuse — leans on that, so these tests check digests,
not just shapes.
"""

import numpy as np
import pytest

from repro.graph import shared
from repro.graph.csr import CsrGraph
from repro.graph.delta import (
    GraphDelta,
    MutableGraphHandle,
    apply_delta,
    sample_delta,
)
from repro.graph.datasets import (
    apply_delta as apply_dataset_delta,
    clear_cache,
    current_handle,
    load,
    resolve_version,
    split_version,
    version_exists,
)

SCALE = 65536


@pytest.fixture(autouse=True)
def clean_registry():
    clear_cache()
    yield
    shared.disable_graph_store()
    clear_cache()


def tiny_graph():
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {0}, 3 -> {}
    return CsrGraph.from_edges(
        4, np.array([0, 0, 1, 2]), np.array([1, 2, 2, 0]))


def valued_graph():
    src = np.array([0, 0, 1, 2, 3])
    dst = np.array([1, 2, 2, 0, 1])
    values = np.array([10, 20, 30, 40, 50], dtype=np.int64)
    return CsrGraph.from_edges(4, src, dst, values=values)


class TestCanonicalization:
    def test_two_spellings_share_digest(self):
        a = GraphDelta.of(insertions=[[2, 3], [0, 3], [2, 3]],
                          deletions=[[1, 2]])
        b = GraphDelta.of(insertions=[[0, 3], [2, 3]],
                          deletions=[[1, 2]])
        assert a.insertions.tolist() == b.insertions.tolist()
        assert a.content_digest() == b.content_digest()

    def test_self_loops_dropped(self):
        delta = GraphDelta.of(insertions=[[1, 1], [0, 3]])
        assert delta.insertions.shape == (1, 2)
        assert delta.insertions.tolist() == [[0, 3]]

    def test_insert_delete_not_interchangeable(self):
        ins = GraphDelta.of(insertions=[[0, 3]])
        dels = GraphDelta.of(deletions=[[0, 3]])
        assert ins.content_digest() != dels.content_digest()

    def test_values_follow_their_edges_through_canonicalization(self):
        # Unsorted insertions with a self-loop and a duplicate: values
        # must stay attached to the surviving, sorted edges.
        delta = GraphDelta.of(
            insertions=[[2, 0], [1, 1], [0, 3], [2, 0]],
            insert_values=np.array([7.0, 9.0, 5.0, 7.0]))
        assert delta.insertions.tolist() == [[0, 3], [2, 0]]
        assert delta.insert_values.tolist() == [5.0, 7.0]

    def test_value_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one entry per insertion"):
            GraphDelta.of(insertions=[[0, 1], [0, 2]],
                          insert_values=np.array([1.0]))

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError, match="edge array"):
            GraphDelta.of(insertions=[[0, 1, 2]])
        with pytest.raises(ValueError, match="negative"):
            GraphDelta.of(deletions=[[-1, 2]])

    def test_shape_properties(self):
        delta = GraphDelta.of(insertions=[[0, 3]], deletions=[[1, 2]])
        assert delta.num_changes == 2
        assert not delta.empty
        assert delta.touched_rows().tolist() == [0, 1]
        assert GraphDelta.of().empty


class TestApplySemantics:
    def test_insert_and_delete(self):
        graph = tiny_graph()
        mutated = graph.apply(GraphDelta.of(insertions=[[3, 0]],
                                            deletions=[[0, 2]]))
        # Oracle: rebuild the mutated edge list from scratch.
        oracle = CsrGraph.from_edges(
            4, np.array([0, 1, 2, 3]), np.array([1, 2, 0, 0]))
        assert mutated.content_digest() == oracle.content_digest()

    def test_reinsert_existing_edge_is_noop(self):
        graph = tiny_graph()
        mutated = graph.apply(GraphDelta.of(insertions=[[0, 1]]))
        assert mutated.content_digest() == graph.content_digest()

    def test_delete_missing_edge_is_noop(self):
        graph = tiny_graph()
        mutated = graph.apply(GraphDelta.of(deletions=[[3, 1]]))
        assert mutated.content_digest() == graph.content_digest()

    def test_empty_delta_is_identity(self):
        graph = tiny_graph()
        assert graph.apply(GraphDelta.of()).content_digest() == \
            graph.content_digest()

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            tiny_graph().apply(GraphDelta.of(insertions=[[0, 99]]))

    def test_values_preserved_and_extended(self):
        graph = valued_graph()
        mutated = graph.apply(GraphDelta.of(
            insertions=[[3, 0]], deletions=[[0, 2]],
            insert_values=np.array([99], dtype=np.int64)))
        oracle = CsrGraph.from_edges(
            4, np.array([0, 1, 2, 3, 3]), np.array([1, 2, 0, 1, 0]),
            values=np.array([10, 30, 40, 50, 99], dtype=np.int64))
        assert mutated.values is not None
        assert mutated.content_digest() == oracle.content_digest()

    def test_reinserted_edge_keeps_original_value(self):
        graph = valued_graph()
        mutated = graph.apply(GraphDelta.of(
            insertions=[[0, 1]],
            insert_values=np.array([777], dtype=np.int64)))
        assert mutated.content_digest() == graph.content_digest()

    def test_valued_graph_requires_insert_values(self):
        with pytest.raises(ValueError, match="insert_values"):
            valued_graph().apply(GraphDelta.of(insertions=[[3, 0]]))

    @pytest.mark.parametrize("kind", ["insert", "delete", "mixed"])
    def test_randomized_parity_with_from_scratch(self, kind):
        """Incremental apply == from-scratch rebuild on a real dataset."""
        graph = load("ukl", SCALE)
        ins = 12 if kind in ("insert", "mixed") else 0
        dels = 12 if kind in ("delete", "mixed") else 0
        delta = sample_delta(graph, seed=7, insertions=ins,
                             deletions=dels)
        mutated = graph.apply(delta)
        # Independent oracle over plain Python edge sets.
        edges = set()
        for src in range(graph.num_vertices):
            for pos in range(int(graph.offsets[src]),
                             int(graph.offsets[src + 1])):
                edges.add((src, int(graph.neighbors[pos])))
        edges -= {tuple(e) for e in delta.deletions.tolist()}
        edges |= {tuple(e) for e in delta.insertions.tolist()}
        pairs = sorted(edges)
        oracle = CsrGraph.from_edges(
            graph.num_vertices,
            np.array([s for s, _d in pairs]),
            np.array([d for _s, d in pairs]))
        assert mutated.content_digest() == oracle.content_digest()

    def test_sample_delta_respects_row_range(self):
        graph = load("ukl", SCALE)
        delta = sample_delta(graph, seed=3, insertions=20, deletions=20,
                             row_range=(64, 128))
        rows = delta.touched_rows()
        assert rows.size > 0
        assert rows.min() >= 64 and rows.max() < 128


class TestLineage:
    def test_version_digests_lineage(self):
        graph = tiny_graph()
        base = MutableGraphHandle(name="t", scale=SCALE, graph=graph,
                                  base_digest=graph.content_digest())
        assert base.version == ""
        assert base.versioned_name == "t"
        d1 = GraphDelta.of(insertions=[[3, 0]])
        d2 = GraphDelta.of(deletions=[[0, 1]])
        h12 = base.apply(d1).apply(d2)
        h21 = base.apply(d2).apply(d1)
        # Same deltas, same order -> same version tag; different order
        # is a different lineage even when the graphs agree.
        assert h12.version == base.apply(d1).apply(d2).version
        assert h12.version != h21.version
        assert h12.versioned_name == f"t@{h12.version}"
        assert h12.lineage == (graph.content_digest(),
                               (d1.content_digest(),
                                d2.content_digest()))


class TestDatasetRegistry:
    def test_apply_registers_new_head(self):
        base = load("ukl", SCALE)
        delta = sample_delta(base, seed=1, insertions=5, deletions=5)
        handle = apply_dataset_delta("ukl", delta, SCALE)
        name, version = split_version(handle.versioned_name)
        assert name == "ukl" and version
        assert resolve_version("ukl", SCALE) == handle.versioned_name
        assert version_exists(handle.versioned_name, SCALE)
        assert current_handle("ukl", SCALE) is handle
        # The bare name still loads the *base* graph.
        assert load("ukl", SCALE).content_digest() == \
            base.content_digest()
        assert load(handle.versioned_name, SCALE).content_digest() == \
            handle.graph.content_digest()

    def test_deltas_chain_from_the_head(self):
        base = load("ukl", SCALE)
        h1 = apply_dataset_delta(
            "ukl", sample_delta(base, seed=1, insertions=5), SCALE)
        h2 = apply_dataset_delta(
            "ukl", sample_delta(base, seed=2, deletions=5), SCALE)
        assert h2.deltas[:1] == h1.deltas
        assert len(h2.deltas) == 2
        assert resolve_version("ukl", SCALE) == h2.versioned_name
        # Explicit versions keep addressing their own instance.
        assert resolve_version(h1.versioned_name, SCALE) == \
            h1.versioned_name
        assert load(h1.versioned_name, SCALE).content_digest() == \
            h1.graph.content_digest()

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            apply_dataset_delta("nope", GraphDelta.of(
                insertions=[[0, 1]]), SCALE)
        with pytest.raises(KeyError):
            load("ukl@deadbeefdeadbeef", SCALE)
        assert not version_exists("ukl@deadbeefdeadbeef", SCALE)
        assert not version_exists("nope", SCALE)

    def test_mutation_does_not_shadow_base_manifest(self, tmp_path):
        """Satellite regression: a delta-mutated dataset gets its own
        manifest entry in the graph store — the base graph's cached
        memmap is untouched and still resolves to the base content."""
        store = shared.enable_graph_store(str(tmp_path / "graphs"))
        base = load("ukl", SCALE)  # publishes load/ukl/<scale>
        base_digest = base.content_digest()
        delta = sample_delta(base, seed=9, insertions=8, deletions=8)
        handle = apply_dataset_delta("ukl", delta, SCALE)
        assert handle.graph.content_digest() != base_digest
        # Both manifests exist, under distinct keys, with the right
        # content behind each.
        stored_base = store.get_graph(f"load/ukl/{SCALE}")
        stored_mut = store.get_graph(
            f"load/{handle.versioned_name}/{SCALE}")
        assert stored_base is not None and stored_mut is not None
        assert stored_base.content_digest() == base_digest
        assert stored_mut.content_digest() == \
            handle.graph.content_digest()

    def test_published_version_loads_in_fresh_registry(self, tmp_path):
        """How a pool worker sees the dispatcher's mutation: the
        in-process registry is empty, the graph store resolves it."""
        shared.enable_graph_store(str(tmp_path / "graphs"))
        base = load("ukl", SCALE)
        handle = apply_dataset_delta(
            "ukl", sample_delta(base, seed=4, insertions=6), SCALE)
        versioned = handle.versioned_name
        digest = handle.graph.content_digest()
        # Simulate a fresh worker process: clear the in-process
        # registry but keep the store.
        load.cache_clear()
        from repro.graph.datasets import _HANDLES, _HEADS
        _HANDLES.clear()
        _HEADS.clear()
        assert version_exists(versioned, SCALE)
        assert load(versioned, SCALE).content_digest() == digest
