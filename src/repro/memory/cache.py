"""Cache models: exact set-associative (LRU / DRRIP) and fast LRU.

Two implementations with one interface (``access(line, write) -> hit``):

* :class:`SetAssocCache` — exact set-associative model with true LRU or
  DRRIP (SRRIP/BRRIP with set dueling, as in the paper's 32 MB LLC).
  Used by unit tests and the functional engine path.
* :class:`FastLruCache` — fully-associative LRU over an ``OrderedDict``.
  A 16-way 32 MB cache behaves almost identically to fully-associative
  LRU for these workloads, and the dict version is ~5x faster, which
  matters when the traffic model replays millions of scatter accesses.

Both track hits, misses, and dirty evictions (writebacks).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.config import CacheConfig

#: Below this batch size the scalar loop beats the vectorized replay's
#: fixed setup cost; both paths are bit-identical either way.
_BATCH_MIN = 64

# DRRIP constants (2-bit RRPV, 32 dueling sets per policy, 10-bit PSEL).
_RRPV_BITS = 2
_RRPV_MAX = (1 << _RRPV_BITS) - 1
_BRRIP_LONG_PROB = 32  # 1-in-32 insertions at long re-reference in BRRIP


@dataclass
class CacheStats:
    """Access counters for one cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.writebacks = self.evictions = 0


class SetAssocCache:
    """Exact set-associative cache with LRU or DRRIP replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.stats = CacheStats()
        self._tags: List[List[int]] = [[-1] * self.ways
                                       for _ in range(self.num_sets)]
        self._dirty: List[List[bool]] = [[False] * self.ways
                                         for _ in range(self.num_sets)]
        self._drrip = config.replacement == "drrip"
        if self._drrip:
            self._rrpv: List[List[int]] = [[_RRPV_MAX] * self.ways
                                           for _ in range(self.num_sets)]
            self._psel = 512  # 10-bit saturating selector, mid-point
            self._brrip_tick = 0
        else:
            # LRU stamps; larger == more recent.
            self._stamp: List[List[int]] = [[0] * self.ways
                                            for _ in range(self.num_sets)]
            self._clock = 0

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def access(self, line: int, write: bool = False) -> bool:
        """Access one cache line address; returns True on hit."""
        set_index = self._set_index(line)
        tags = self._tags[set_index]
        try:
            way = tags.index(line)
        except ValueError:
            way = -1
        if way >= 0:
            self.stats.hits += 1
            self._touch(set_index, way)
            if write:
                self._dirty[set_index][way] = True
            return True
        self.stats.misses += 1
        self._fill(set_index, line, write)
        return False

    def contains(self, line: int) -> bool:
        """Lookup without side effects."""
        return line in self._tags[self._set_index(line)]

    def invalidate(self, line: int) -> None:
        """Drop a line, accounting it like a replacement victim.

        Mirrors :meth:`_fill`: removing a valid line is an eviction, and
        a dirty one must be written back — silently dropping it would
        lose the writeback traffic.  Idempotent: a second invalidate of
        the same line finds nothing and counts nothing.
        """
        set_index = self._set_index(line)
        tags = self._tags[set_index]
        try:
            way = tags.index(line)
        except ValueError:
            return
        self.stats.evictions += 1
        if self._dirty[set_index][way]:
            self.stats.writebacks += 1
        tags[way] = -1
        self._dirty[set_index][way] = False

    def access_many(self, lines: np.ndarray,
                    writes: Union[np.ndarray, bool] = False
                    ) -> np.ndarray:
        """Batch access: per-line hit mask, same stats as looped access.

        The exact set-associative model has no vectorized fast path
        (replacement state is per-set and policy-dependent); this is the
        batch *interface* — a scalar loop — so callers can drive either
        cache model through one API.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        writes_arr = np.broadcast_to(
            np.asarray(writes, dtype=bool), lines.shape)
        hits = np.empty(lines.size, dtype=bool)
        for i, (line, write) in enumerate(zip(lines.tolist(),
                                              writes_arr.tolist())):
            hits[i] = self.access(line, write)
        return hits

    # -- replacement ------------------------------------------------------

    def _touch(self, set_index: int, way: int) -> None:
        if self._drrip:
            self._rrpv[set_index][way] = 0
        else:
            self._clock += 1
            self._stamp[set_index][way] = self._clock

    def _fill(self, set_index: int, line: int, write: bool) -> None:
        tags = self._tags[set_index]
        victim = self._pick_victim(set_index)
        if tags[victim] != -1:
            self.stats.evictions += 1
            if self._dirty[set_index][victim]:
                self.stats.writebacks += 1
        tags[victim] = line
        self._dirty[set_index][victim] = write
        if self._drrip:
            self._rrpv[set_index][victim] = self._insert_rrpv(set_index)
        else:
            self._clock += 1
            self._stamp[set_index][victim] = self._clock

    def _pick_victim(self, set_index: int) -> int:
        tags = self._tags[set_index]
        for way, tag in enumerate(tags):
            if tag == -1:
                return way
        if self._drrip:
            rrpv = self._rrpv[set_index]
            while True:
                for way, value in enumerate(rrpv):
                    if value == _RRPV_MAX:
                        return way
                for way in range(self.ways):
                    rrpv[way] = min(_RRPV_MAX, rrpv[way] + 1)
        stamps = self._stamp[set_index]
        return stamps.index(min(stamps))

    def _insert_rrpv(self, set_index: int) -> int:
        """DRRIP insertion policy via set dueling.

        Set 0 of every 64-set group leads for SRRIP, set 32 for BRRIP;
        PSEL counts SRRIP-leader misses up and BRRIP-leader misses down,
        and followers copy whichever policy is missing less.
        """
        group = set_index % 64
        if group == 0:  # SRRIP leader: its misses vote against SRRIP
            self._psel = min(1023, self._psel + 1)
            use_srrip = True
        elif group == 32:  # BRRIP leader
            self._psel = max(0, self._psel - 1)
            use_srrip = False
        else:
            use_srrip = self._psel < 512
        if use_srrip:
            return _RRPV_MAX - 1
        self._brrip_tick += 1
        if self._brrip_tick % _BRRIP_LONG_PROB == 0:
            return _RRPV_MAX - 1
        return _RRPV_MAX


class FastLruCache:
    """Fully-associative LRU cache keyed by line address (fast path)."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_lines = capacity_lines
        self.stats = CacheStats()
        self._lines: "OrderedDict[int, bool]" = OrderedDict()  # line->dirty

    def access(self, line: int, write: bool = False) -> bool:
        lines = self._lines
        if line in lines:
            self.stats.hits += 1
            lines.move_to_end(line)
            if write:
                lines[line] = True
            return True
        self.stats.misses += 1
        if len(lines) >= self.capacity_lines:
            _victim, dirty = lines.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        lines[line] = write
        return False

    def access_many(self, lines: np.ndarray,
                    writes: Union[np.ndarray, bool] = False
                    ) -> np.ndarray:
        """Vectorized batch access; bit-identical to looping ``access``.

        Replays the whole stream offline (LRU stack property, see
        :mod:`repro.memory.batch`), updates ``stats`` by the same deltas
        the scalar loop would, and leaves the cache with the same
        contents, dirty bits, and recency order.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        writes_arr = np.broadcast_to(
            np.asarray(writes, dtype=bool), lines.shape)
        if lines.size < _BATCH_MIN:
            hits = np.empty(lines.size, dtype=bool)
            for i, (line, write) in enumerate(zip(lines.tolist(),
                                                  writes_arr.tolist())):
                hits[i] = self.access(line, write)
            return hits
        from repro.memory.batch import replay_lru
        state_lines = np.fromiter(self._lines.keys(), dtype=np.int64,
                                  count=len(self._lines))
        state_dirty = np.fromiter(self._lines.values(), dtype=bool,
                                  count=len(self._lines))
        replay = replay_lru(lines, writes_arr, self.capacity_lines,
                            state_lines, state_dirty)
        self.stats.hits += int(replay.hit_mask.sum())
        self.stats.misses += replay.misses
        self.stats.evictions += replay.evictions
        self.stats.writebacks += replay.writebacks
        self._lines = OrderedDict(
            zip(replay.resident_lines.tolist(),
                map(bool, replay.resident_dirty.tolist())))
        return replay.hit_mask

    def contains(self, line: int) -> bool:
        return line in self._lines

    def flush_dirty(self) -> int:
        """Write back every dirty line; returns how many were dirty."""
        dirty = sum(1 for d in self._lines.values() if d)
        self.stats.writebacks += dirty
        for line in self._lines:
            self._lines[line] = False
        return dirty

    def clear(self) -> None:
        self._lines.clear()


def make_cache(config: CacheConfig, fast: bool = False):
    """Factory: exact model by default, fast LRU when requested."""
    if fast:
        return FastLruCache(config.num_lines)
    return SetAssocCache(config)
