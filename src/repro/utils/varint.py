"""Length-prefixed byte codes for unsigned integers.

This is the "byte code" the paper's delta-encoding implementation uses
(Sec III-B): each value is emitted as the smallest encoding that holds it,
with a 2-bit length prefix.  The prefix lives in the top two bits of the
first byte and selects how many payload bytes follow (0, 1, 3, or 8), so
encodings are 1, 2, 4, or 9 bytes and cover the full 64-bit range plus the
extra zigzag bit:

===  ============  =============
tag  total bytes   payload bits
===  ============  =============
0    1             6
1    2             14
2    4             30
3    9             70
===  ============  =============

The format is self-delimiting, so a stream of varints can be decoded
without out-of-band lengths — exactly what the hardware decompression unit
needs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

_PAYLOAD_BYTES = (0, 1, 3, 8)  # bytes after the first, per tag
_MAX_FOR_TAG = tuple((1 << (6 + 8 * extra)) - 1 for extra in _PAYLOAD_BYTES)

#: Largest value a byte-code varint can hold (70 bits).
VARINT_MAX = _MAX_FOR_TAG[-1]


def varint_size(value: int) -> int:
    """Encoded size of ``value`` in bytes (1, 2, 4, or 9)."""
    if value < 0:
        raise ValueError("varint values must be non-negative")
    for tag, limit in enumerate(_MAX_FOR_TAG):
        if value <= limit:
            return 1 + _PAYLOAD_BYTES[tag]
    raise ValueError(f"value {value} too large for 70-bit varint")


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a length-prefixed byte code."""
    if value < 0:
        raise ValueError("varint values must be non-negative")
    for tag, limit in enumerate(_MAX_FOR_TAG):
        if value <= limit:
            extra = _PAYLOAD_BYTES[tag]
            out = bytearray(1 + extra)
            out[0] = (tag << 6) | (value >> (8 * extra))
            for i in range(extra):
                out[1 + i] = (value >> (8 * (extra - 1 - i))) & 0xFF
            return bytes(out)
    raise ValueError(f"value {value} too large for 70-bit varint")


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint at ``offset``; returns ``(value, next_offset)``."""
    first = data[offset]
    tag = first >> 6
    extra = _PAYLOAD_BYTES[tag]
    value = first & 0x3F
    for i in range(extra):
        value = (value << 8) | data[offset + 1 + i]
    return value, offset + 1 + extra


def encode_varint_stream(values: Iterable[int]) -> bytes:
    """Concatenate the varint encodings of ``values``."""
    out = bytearray()
    for value in values:
        out += encode_varint(value)
    return bytes(out)


def decode_varint_stream(data: bytes) -> List[int]:
    """Decode a whole buffer of back-to-back varints."""
    values: List[int] = []
    offset = 0
    while offset < len(data):
        value, offset = decode_varint(data, offset)
        values.append(value)
    return values
