"""Stage 1 — stream-gen: raw access streams of one workload.

A pure function of the workload alone (which itself is a deterministic
function of (app, dataset, preprocessing, scale)): no LLC geometry, no
codec, no timing constant enters here.  Everything downstream — cache
replays, compression measurement, cost models — prices these frozen
streams, so a timing or codec change never regenerates them.

The quantities mirror :func:`repro.runtime.traffic._profile_iteration`'s
opening section exactly; the randomized parity suite
(``tests/test_stages_parity.py``) holds the staged path bit-identical to
the monolithic profiler.

Partitioned generation
----------------------

:func:`generate_streams_partitioned` splits the stage into K
vertex-range partitions, each content-addressed independently, so a
graph delta recomputes only the partitions whose rows or active sources
changed — see ``docs/DYNAMIC_GRAPHS.md``.  Two decisions make the
stitched artifact bit-identical to whole-graph generation by
construction:

* a partition stores only *row-content-derived* data (the gathered
  destination-id slice).  Line footprints depend on absolute row
  phases, which an edge delta in an *earlier* partition shifts even
  when this partition's rows are untouched; they are therefore
  recomputed at stitch time through the very same
  ``_row_line_bytes`` / ``_scattered_line_bytes`` calls the whole-graph
  path makes, as are all count-based quantities and the global
  all-active shortcuts;
* a partition's cache key hashes its actual inputs — the rows in
  ``[lo, hi)`` (offsets relative to the range start, so upstream edge
  shifts don't rotate it) plus each iteration's active-source slice —
  making the key self-validating for every app.

Whole-graph generation (:func:`generate_streams`) is the K=1 special
case and remains the parity oracle; ``tests/test_stream_partitions.py``
holds the two digest-identical across apps, datasets, and K.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, List, Optional

import numpy as np

from repro.jobs.fingerprint import stream_partition_fingerprint
from repro.runtime.traffic import (
    _ceil_lines,
    _row_line_bytes,
    _scattered_line_bytes,
    _transpose_of,
    gather_rows,
)
from repro.runtime.traffic_array import (
    partition_bounds,
    partition_gather_stream,
)
from repro.runtime.workload import Workload
from repro.stages.artifacts import (
    IterationStreams,
    PartitionIterationStreams,
    StreamArtifact,
    StreamPartition,
)

#: fetch(key, build) -> StreamPartition: the per-partition cache hook.
PartitionFetch = Callable[[str, Callable[[], StreamPartition]],
                          StreamPartition]


def generate_streams(workload: Workload) -> StreamArtifact:
    """Record every raw stream the strategies will price."""
    return _generate_impl(workload, None)


def generate_streams_partitioned(
        workload: Workload, partitions: int,
        fetch: Optional[PartitionFetch] = None) -> StreamArtifact:
    """K-partition stream generation, bit-identical to
    :func:`generate_streams`.

    ``fetch`` mediates the per-partition content-addressed cache
    (:class:`~repro.stages.pipeline.StagePricer` wires it to the result
    cache and the ``stream.partition.hit/computed`` counters); ``None``
    always computes.  Falls back to whole-graph generation when the
    range split cannot apply (K=1 with no cache, or an iteration whose
    active sources are not ascending).
    """
    graph = workload.graph
    degrees = graph.out_degrees()
    num_vertices = graph.num_vertices
    bounds = partition_bounds(num_vertices, partitions)

    contexts = []
    sliceable = True
    for it in workload.iterations:
        sources = it.sources
        if sources.size and np.any(np.diff(sources) < 0):
            sliceable = False
            break
        contexts.append((sources, sources.size >= num_vertices))
    if not sliceable or (len(bounds) == 1 and fetch is None):
        return _generate_impl(workload, None)

    parts: List[StreamPartition] = []
    for lo, hi in bounds:
        slices = []
        for sources, all_active in contexts:
            i0, i1 = np.searchsorted(sources, (lo, hi))
            slices.append((sources[i0:i1], all_active))
        digest = _partition_payload_digest(graph, lo, hi, slices)
        key = stream_partition_fingerprint(lo, hi, digest)

        def build(lo=lo, hi=hi, slices=slices) -> StreamPartition:
            return _build_partition(graph, degrees, lo, hi, slices)

        parts.append(fetch(key, build) if fetch is not None else build())

    dsts_override = []
    for index, (sources, all_active) in enumerate(contexts):
        if all_active:
            dsts_override.append(graph.neighbors)
        else:
            dsts_override.append(np.concatenate(
                [part.iterations[index].dsts for part in parts]))
    return _generate_impl(workload, dsts_override)


def _partition_payload_digest(graph, lo: int, hi: int, slices) -> str:
    """Digest of one partition's actual inputs.

    Row offsets are hashed *relative* to the range start: an edge
    delta in an earlier partition shifts this range's absolute
    positions but not its content, and the partition's output (the
    gathered row slice) depends only on content — so untouched
    partitions keep their keys.
    """
    digest = hashlib.blake2b(digest_size=16)
    offsets = graph.offsets
    digest.update(struct.pack("<qqq", lo, hi, graph.num_vertices))
    digest.update(np.ascontiguousarray(
        offsets[lo:hi + 1] - offsets[lo]).tobytes())
    digest.update(np.ascontiguousarray(
        graph.neighbors[offsets[lo]:offsets[hi]]).tobytes())
    for sources, all_active in slices:
        digest.update(struct.pack("<?q", bool(all_active), sources.size))
        digest.update(str(sources.dtype).encode())
        digest.update(np.ascontiguousarray(sources).tobytes())
    return digest.hexdigest()


def _build_partition(graph, degrees, lo: int, hi: int,
                     slices) -> StreamPartition:
    iterations = []
    for sources, all_active in slices:
        num_edges = int(degrees[sources].sum())
        if all_active:
            # The stitcher reuses the whole neighbours array, exactly
            # like the whole-graph generator's all-active shortcut.
            dsts = np.empty(0, dtype=graph.neighbors.dtype)
        else:
            dsts = partition_gather_stream(
                graph.offsets, graph.neighbors, degrees, sources)
        iterations.append(PartitionIterationStreams(
            num_sources=int(sources.size),
            num_edges=num_edges,
            dsts=dsts))
    return StreamPartition(lo=lo, hi=hi, iterations=iterations)


def _generate_impl(workload: Workload,
                   dsts_override: Optional[List[np.ndarray]]
                   ) -> StreamArtifact:
    graph = workload.graph
    degrees = graph.out_degrees()
    num_vertices = graph.num_vertices
    svb = workload.src_value_bytes

    # Pull's transposed walk applies to all-active iterations with
    # source data; record its streams once when any iteration qualifies.
    need_pull = bool(svb) and any(it.sources.size >= num_vertices
                                  for it in workload.iterations)
    if need_pull:
        transposed = _transpose_of(graph)
        pull_neighbors = transposed.neighbors
        pull_degrees = transposed.out_degrees()
        pull_adj_bytes = _row_line_bytes(
            transposed, np.arange(transposed.num_vertices))
    else:
        pull_neighbors = np.empty(0, dtype=graph.neighbors.dtype)
        pull_degrees = np.empty(0, dtype=np.int64)
        pull_adj_bytes = 0

    iterations = []
    for index, it in enumerate(workload.iterations):
        sources = it.sources
        all_active = sources.size >= num_vertices
        active_degrees = degrees[sources]
        num_edges = int(active_degrees.sum())

        if all_active:
            offsets_bytes = _ceil_lines((num_vertices + 1) * 8)
        else:
            offsets_bytes = _scattered_line_bytes(sources, 8)
        neigh_bytes = _row_line_bytes(graph, sources)
        dsts = dsts_override[index] if dsts_override is not None \
            else gather_rows(graph, sources)

        edge_values = workload.extras.get("edge_values")
        edge_value_bytes = _ceil_lines(
            num_edges * edge_values.dtype.itemsize) \
            if edge_values is not None else 0

        if svb == 0:
            src_bytes = 0
        elif all_active:
            src_bytes = _ceil_lines(num_vertices * svb)
        else:
            src_bytes = _scattered_line_bytes(sources, svb)
        # Source values only feed the compress stage on the all-active
        # path (scattered accesses cannot use compressed layouts).
        src_values = it.src_values if (svb and all_active) \
            else np.empty(0, dtype=np.uint8)

        frontier_bytes = _ceil_lines(sources.size * 4) * 2 \
            if workload.frontier_based else 0
        update_bytes = _ceil_lines(num_edges * workload.update_bytes)

        iterations.append(IterationStreams(
            weight=it.weight,
            num_sources=int(sources.size),
            num_edges=num_edges,
            all_active=all_active,
            sources=sources,
            active_degrees=active_degrees,
            dsts=dsts,
            src_values=src_values,
            update_values=it.update_values,
            offsets_bytes=offsets_bytes,
            neigh_bytes=neigh_bytes,
            edge_value_bytes=edge_value_bytes,
            src_bytes=src_bytes,
            frontier_bytes=frontier_bytes,
            update_bytes=update_bytes,
        ))

    return StreamArtifact(
        num_vertices=num_vertices,
        dst_value_bytes=workload.dst_value_bytes,
        src_value_bytes=svb,
        update_bytes=workload.update_bytes,
        frontier_based=workload.frontier_based,
        neighbors=graph.neighbors,
        dst_values=workload.dst_values,
        edge_values=workload.extras.get("edge_values"),
        pull_neighbors=pull_neighbors,
        pull_degrees=pull_degrees,
        pull_adj_bytes=pull_adj_bytes,
        iterations=iterations,
    )
