"""Tests for the sensitivity sweeps."""

import pytest

from repro.sim import Runner
from repro.sim.sweeps import bandwidth_sweep, core_sweep, llc_sweep


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=65536)


class TestBandwidthSweep:
    def test_regimes(self, runner):
        """Scarce bandwidth: both schemes are bandwidth-bound, so the
        advantage equals the traffic ratio.  Abundant bandwidth: both
        hit their compute floors, so the advantage saturates at the
        offload ratio and more bandwidth buys nothing further."""
        rows = bandwidth_sweep(runner, "pr", "ukl",
                               factors=(0.5, 2.0, 4.0),
                               schemes=("push", "phi+spzip"))
        scarce, mid, abundant = (row["phi+spzip"] for row in rows)
        assert scarce < mid            # traffic-ratio-limited regime
        assert abundant <= mid * 1.05  # compute-floor saturation

    def test_baseline_always_one(self, runner):
        rows = bandwidth_sweep(runner, "dc", "arb",
                               factors=(1.0,),
                               schemes=("push", "phi"))
        assert rows[0]["push"] == pytest.approx(1.0)


class TestLlcSweep:
    def test_bigger_llc_helps_push(self, runner):
        """More capacity -> fewer destination scatter misses."""
        rows = llc_sweep(runner, "pr", "web",
                         factors=(0.25, 2.0), schemes=("push",
                                                       "phi+spzip"))
        small = rows[0]["phi+spzip"]  # SpZip advantage over Push
        big = rows[1]["phi+spzip"]
        # When Push stops missing, SpZip's relative edge narrows.
        assert big <= small * 1.1

    def test_llc_bytes_reported(self, runner):
        rows = llc_sweep(runner, "dc", "arb", factors=(0.5,),
                         schemes=("push",))
        assert rows[0]["llc_bytes"] > 0


class TestCoreSweep:
    def test_core_bound_scheme_scales_then_saturates(self, runner):
        rows = core_sweep(runner, "pr", "ukl", counts=(4, 32),
                          scheme="push")
        assert rows[0]["speedup"] == pytest.approx(1.0)
        assert rows[1]["speedup"] >= 1.0

    def test_memory_bound_scheme_stops_scaling(self, runner):
        rows = core_sweep(runner, "pr", "ukl", counts=(4, 64),
                          scheme="phi+spzip")
        # Bandwidth-bound: 16x the cores buys far less than 16x.
        assert rows[1]["speedup"] < 8.0
